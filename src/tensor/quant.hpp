// Quantization helpers for low-bit CNN inference (paper Fig. 5(a)).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "tensor/tensor.hpp"

namespace flash::tensor {

/// Symmetric signed range of a b-bit quantizer: [-2^(b-1), 2^(b-1) - 1].
i64 quant_min(int bits);
i64 quant_max(int bits);

/// Clamp into the b-bit signed range.
i64 clamp_to_bits(i64 v, int bits);

/// Requantization: arithmetic shift right with round-to-nearest, then clamp
/// to the target bit-width. This is the layer-level robustness mechanism —
/// errors confined to the discarded LSBs vanish here.
i64 requantize(i64 sum_product, int shift, int out_bits);
void requantize(std::vector<i64>& values, int shift, int out_bits);

/// Bit-width needed to represent the worst-case sum-product of a conv layer
/// with `taps` = C*k*k accumulated products of a_bits x w_bits operands.
int sum_product_bits(int a_bits, int w_bits, std::size_t taps);

/// Synthetic "pretrained-like" low-bit weights: zero-mean discretized
/// Gaussian clipped to the quantizer range (matches the bell-shaped weight
/// histograms of trained CNNs far better than uniform noise).
Tensor4 random_weights(std::size_t m, std::size_t c, std::size_t k, int bits, std::mt19937_64& rng);

/// Rectangular-kernel variant (kh x kw), same distribution. The square
/// overload delegates here, so the draw sequence for a k x k kernel is
/// unchanged.
Tensor4 random_weights(std::size_t m, std::size_t c, std::size_t kh, std::size_t kw, int bits,
                       std::mt19937_64& rng);

/// Synthetic activations: non-negative (post-ReLU) discretized half-Gaussian.
Tensor3 random_activations(std::size_t c, std::size_t h, std::size_t w, int bits, std::mt19937_64& rng);

}  // namespace flash::tensor
