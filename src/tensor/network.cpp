#include "tensor/network.hpp"

#include <cmath>
#include <stdexcept>

namespace flash::tensor {

ConvFn reference_conv() {
  return [](const Tensor3& x, const Tensor4& w) {
    return conv2d(x, w, ConvSpec{1, w.kernel_h() / 2});
  };
}

void apply_conv_postops(Tensor3& values, const NetLayer& layer) {
  if (layer.clamp_bits > 0) requantize(values.data(), layer.requant_shift, layer.clamp_bits);
  if (layer.relu) {
    for (auto& v : values.data()) v = v < 0 ? 0 : v;
  }
}

void apply_join_postops(Tensor3& values, const NetLayer& layer) {
  if (layer.clamp_bits > 0) {
    for (auto& v : values.data()) v = clamp_to_bits(v, layer.clamp_bits);
  }
  if (layer.relu) {
    for (auto& v : values.data()) v = v < 0 ? 0 : v;
  }
}

LayerStack::ConvExec LayerStack::reference_executor() {
  return [](const Tensor3& x, const Tensor4& w, std::size_t stride, std::size_t pad) {
    return conv2d(x, w, ConvSpec{stride, pad});
  };
}

Shape3 LayerStack::layer_output_shape(Shape3 in, const NetLayer& layer) {
  switch (layer.kind) {
    case NetLayer::Kind::kConv: {
      const ConvSpec spec{layer.stride, layer.pad};
      if (layer.weights.in_channels() != in.c) {
        throw std::invalid_argument("LayerStack: conv in_channels != activation channels");
      }
      if (in.h + 2 * layer.pad < layer.weights.kernel_h() ||
          in.w + 2 * layer.pad < layer.weights.kernel_w()) {
        throw std::invalid_argument("LayerStack: kernel larger than padded activation");
      }
      return Shape3{layer.weights.out_channels(), spec.out_dim(in.h, layer.weights.kernel_h()),
                    spec.out_dim(in.w, layer.weights.kernel_w())};
    }
    case NetLayer::Kind::kResidualAdd:
      return in;
    case NetLayer::Kind::kFullyConnected:
      if (layer.fc_out == 0 || layer.fc_weights.size() != layer.fc_out * in.volume()) {
        throw std::invalid_argument("LayerStack: FC weight size != fc_out * flattened features");
      }
      return Shape3{1, 1, layer.fc_out};
  }
  throw std::invalid_argument("LayerStack: unknown layer kind");
}

NetworkResult LayerStack::forward(const Tensor3& x, const ConvExec& conv,
                                  std::vector<Tensor3>* layer_outputs) const {
  NetworkResult result;
  Tensor3 cur = x;
  std::vector<Tensor3> saved;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const NetLayer& layer = layers[i];
    switch (layer.kind) {
      case NetLayer::Kind::kConv: {
        cur = conv(cur, layer.weights, layer.stride, layer.pad);
        apply_conv_postops(cur, layer);
        break;
      }
      case NetLayer::Kind::kResidualAdd: {
        if (layer.source >= saved.size()) {
          throw std::invalid_argument("LayerStack: residual source not saved yet");
        }
        cur = add(cur, saved[layer.source]);
        apply_join_postops(cur, layer);
        break;
      }
      case NetLayer::Kind::kFullyConnected: {
        if (i + 1 != layers.size()) {
          throw std::invalid_argument("LayerStack: FC layer must be last");
        }
        result.logits = linear(cur.data(), layer.fc_weights, layer.fc_out);
        result.has_logits = true;
        if (layer_outputs) {
          Tensor3 logits_t(1, 1, layer.fc_out);
          logits_t.data() = result.logits;
          layer_outputs->push_back(std::move(logits_t));
        }
        result.features = std::move(cur);
        return result;
      }
    }
    if (layer.save_output) saved.push_back(cur);
    if (layer_outputs) layer_outputs->push_back(cur);
  }
  result.features = std::move(cur);
  return result;
}

LayerStack LayerStack::from_quant_net(const SmallQuantNet& net) {
  LayerStack stack;
  NetLayer stem;
  stem.weights = net.stem;
  stem.pad = net.stem.kernel_h() / 2;
  stem.requant_shift = net.stem_shift;
  stem.clamp_bits = net.act_bits;
  stem.relu = true;
  stem.save_output = !net.blocks.empty();
  stack.layers.push_back(std::move(stem));
  for (std::size_t i = 0; i < net.blocks.size(); ++i) {
    const QuantizedBlock& block = net.blocks[i];
    NetLayer c1;
    c1.weights = block.conv1;
    c1.pad = block.conv1.kernel_h() / 2;
    c1.requant_shift = block.requant_shift;
    c1.clamp_bits = block.act_bits;
    c1.relu = true;
    stack.layers.push_back(std::move(c1));
    NetLayer c2;
    c2.weights = block.conv2;
    c2.pad = block.conv2.kernel_h() / 2;
    c2.requant_shift = block.requant_shift;
    c2.clamp_bits = block.act_bits;
    c2.relu = false;
    stack.layers.push_back(std::move(c2));
    NetLayer join;
    join.kind = NetLayer::Kind::kResidualAdd;
    join.source = i;  // stem saved slot 0, block i's join saved slot i+1
    join.clamp_bits = block.act_bits;
    join.relu = true;
    join.save_output = i + 1 < net.blocks.size();
    stack.layers.push_back(std::move(join));
  }
  NetLayer fc;
  fc.kind = NetLayer::Kind::kFullyConnected;
  fc.fc_weights = net.head.fc_weights;
  fc.fc_out = net.head.classes;
  stack.layers.push_back(std::move(fc));
  return stack;
}

namespace {

int shift_for(int a_bits, int w_bits, std::size_t taps) {
  int s = sum_product_bits(a_bits, w_bits, taps) - a_bits - 2;
  return s < 0 ? 0 : s;
}

/// A conv + requant + ReLU layer saved (or not) for a later residual join.
NetLayer quant_conv(Tensor4 weights, std::size_t stride, std::size_t pad, int shift, int a_bits,
                    bool relu, bool save) {
  NetLayer l;
  l.weights = std::move(weights);
  l.stride = stride;
  l.pad = pad;
  l.requant_shift = shift;
  l.clamp_bits = a_bits;
  l.relu = relu;
  l.save_output = save;
  return l;
}

}  // namespace

LayerStack LayerStack::resnet18_like(std::size_t in_c, std::size_t width, std::size_t spatial,
                                     std::size_t classes, int w_bits, int a_bits,
                                     std::mt19937_64& rng) {
  LayerStack stack;
  std::size_t save_slots = 0;
  const auto block = [&](std::size_t channels, bool save_join) {
    const int shift = shift_for(a_bits, w_bits, channels * 9);
    stack.layers.push_back(
        quant_conv(random_weights(channels, channels, 3, w_bits, rng), 1, 1, shift, a_bits,
                   /*relu=*/true, /*save=*/false));
    stack.layers.push_back(
        quant_conv(random_weights(channels, channels, 3, w_bits, rng), 1, 1, shift, a_bits,
                   /*relu=*/false, /*save=*/false));
    NetLayer join;
    join.kind = NetLayer::Kind::kResidualAdd;
    join.source = save_slots - 1;  // most recent saved activation
    join.clamp_bits = a_bits;
    join.relu = true;
    join.save_output = save_join;
    stack.layers.push_back(std::move(join));
    if (save_join) ++save_slots;
  };

  // Stem: 3x3 s1 'same', in_c -> width; saved as the first block's shortcut.
  stack.layers.push_back(quant_conv(random_weights(width, in_c, 3, w_bits, rng), 1, 1,
                                    shift_for(a_bits, w_bits, in_c * 9), a_bits,
                                    /*relu=*/true, /*save=*/true));
  ++save_slots;
  // Stage 1: two residual blocks at `width`; each join feeds the next block.
  block(width, /*save_join=*/true);
  block(width, /*save_join=*/false);
  // Downsample between stages: 3x3 s2 p1, channels double. No projected
  // shortcut — its output is saved as stage 2's first shortcut instead.
  stack.layers.push_back(quant_conv(random_weights(2 * width, width, 3, w_bits, rng), 2, 1,
                                    shift_for(a_bits, w_bits, width * 9), a_bits,
                                    /*relu=*/true, /*save=*/true));
  ++save_slots;
  // Stage 2: two residual blocks at 2*width.
  block(2 * width, /*save_join=*/true);
  block(2 * width, /*save_join=*/false);

  // FC head over the flattened stage-2 features.
  const std::size_t out_spatial = (spatial + 2 * 1 - 3) / 2 + 1;
  const std::size_t features = 2 * width * out_spatial * out_spatial;
  NetLayer fc;
  fc.kind = NetLayer::Kind::kFullyConnected;
  fc.fc_out = classes;
  fc.fc_weights.resize(classes * features);
  std::normal_distribution<double> dist(0.0, static_cast<double>(quant_max(w_bits)) / 2.5);
  for (auto& v : fc.fc_weights) {
    v = clamp_to_bits(static_cast<i64>(std::llround(dist(rng))), w_bits);
  }
  stack.layers.push_back(std::move(fc));
  return stack;
}

SmallQuantNet SmallQuantNet::random(std::size_t in_c, std::size_t width, std::size_t depth,
                                    std::size_t classes, std::size_t spatial, int w_bits,
                                    int a_bits, std::mt19937_64& rng) {
  SmallQuantNet net;
  net.stem = random_weights(width, in_c, 3, w_bits, rng);
  net.act_bits = a_bits;
  net.stem_shift = sum_product_bits(a_bits, w_bits, in_c * 9) - a_bits - 2;
  if (net.stem_shift < 0) net.stem_shift = 0;
  for (std::size_t d = 0; d < depth; ++d) {
    net.blocks.push_back(QuantizedBlock::random(width, 3, w_bits, a_bits, rng));
  }
  net.head = SyntheticClassifier::random(width * spatial * spatial, classes, w_bits, rng);
  return net;
}

Tensor3 SmallQuantNet::features(const Tensor3& x, const ConvFn& conv) const {
  Tensor3 sp = conv(x, stem);
  requantize(sp.data(), stem_shift, act_bits);
  Tensor3 a = relu(std::move(sp));
  for (const QuantizedBlock& block : blocks) a = block.forward_with(a, conv);
  return a;
}

std::size_t SmallQuantNet::predict(const Tensor3& x, const ConvFn& conv) const {
  const Tensor3 f = features(x, conv);
  if (f.data().size() != head.fc_weights.size() / head.classes) {
    throw std::invalid_argument("SmallQuantNet::predict: head/feature size mismatch");
  }
  return head.predict(f.data());
}

}  // namespace flash::tensor
