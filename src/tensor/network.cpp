#include "tensor/network.hpp"

#include <stdexcept>

namespace flash::tensor {

ConvFn reference_conv() {
  return [](const Tensor3& x, const Tensor4& w) {
    return conv2d(x, w, ConvSpec{1, w.kernel_h() / 2});
  };
}

SmallQuantNet SmallQuantNet::random(std::size_t in_c, std::size_t width, std::size_t depth,
                                    std::size_t classes, std::size_t spatial, int w_bits,
                                    int a_bits, std::mt19937_64& rng) {
  SmallQuantNet net;
  net.stem = random_weights(width, in_c, 3, w_bits, rng);
  net.act_bits = a_bits;
  net.stem_shift = sum_product_bits(a_bits, w_bits, in_c * 9) - a_bits - 2;
  if (net.stem_shift < 0) net.stem_shift = 0;
  for (std::size_t d = 0; d < depth; ++d) {
    net.blocks.push_back(QuantizedBlock::random(width, 3, w_bits, a_bits, rng));
  }
  net.head = SyntheticClassifier::random(width * spatial * spatial, classes, w_bits, rng);
  return net;
}

Tensor3 SmallQuantNet::features(const Tensor3& x, const ConvFn& conv) const {
  Tensor3 sp = conv(x, stem);
  requantize(sp.data(), stem_shift, act_bits);
  Tensor3 a = relu(std::move(sp));
  for (const QuantizedBlock& block : blocks) a = block.forward_with(a, conv);
  return a;
}

std::size_t SmallQuantNet::predict(const Tensor3& x, const ConvFn& conv) const {
  const Tensor3 f = features(x, conv);
  if (f.data().size() != head.fc_weights.size() / head.classes) {
    throw std::invalid_argument("SmallQuantNet::predict: head/feature size mismatch");
  }
  return head.predict(f.data());
}

}  // namespace flash::tensor
