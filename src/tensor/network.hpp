// A small synthetic quantized CNN assembled from the residual blocks — the
// end-to-end inference substrate. The convolution executor is injectable so
// the same network runs on the cleartext reference path or through the
// hybrid HE/2PC protocol (core::FlashAccelerator provides that executor),
// which is how the integration example and tests check full-network
// equivalence.
#pragma once

#include <functional>

#include "tensor/resnet.hpp"

namespace flash::tensor {

/// A stride-1 'same' convolution executor: takes the (unpadded) input and
/// the weights, returns the raw sum-products.
using ConvFn = std::function<Tensor3(const Tensor3&, const Tensor4&)>;

/// The cleartext reference executor.
ConvFn reference_conv();

struct SmallQuantNet;

/// Activation shape bookkeeping for layer-stack programs.
struct Shape3 {
  std::size_t c = 0, h = 0, w = 0;
  std::size_t volume() const { return c * h * w; }
  bool operator==(const Shape3&) const = default;
};

/// One step of a composable network program — the serving-scale superset of
/// SmallQuantNet's fixed stem/block/head shape. Three kinds:
///   * kConv: conv (any stride/pad, square or rectangular kernel) followed
///     by the layer's post-ops (requant shift + clamp, optional ReLU);
///   * kResidualAdd: add a previously saved activation (see save_output),
///     then clamp/ReLU — the residual join of a quantized block;
///   * kFullyConnected: flatten and apply an integer FC head (must be the
///     last layer; the serve path runs it through encoding::matvec).
/// Any layer may set save_output to push its post-op activation onto the
/// save stack a later kResidualAdd consumes by index.
struct NetLayer {
  enum class Kind { kConv, kResidualAdd, kFullyConnected };
  Kind kind = Kind::kConv;

  // kConv
  Tensor4 weights{1, 1, 1, 1};
  std::size_t stride = 1;
  std::size_t pad = 0;
  int requant_shift = 0;
  /// Post-op bit-width; 0 = pass raw sum-products through (no shift/clamp).
  int clamp_bits = 0;
  bool relu = false;

  // kResidualAdd: index into the save stack (order of save_output layers).
  std::size_t source = 0;

  // kFullyConnected
  std::vector<i64> fc_weights;  // fc_out x flattened-features, row-major
  std::size_t fc_out = 0;

  bool save_output = false;
};

/// conv-layer post-ops: requant shift + clamp (iff clamp_bits > 0), then
/// ReLU. Shared by the cleartext forward, the serial HE reference and the
/// served session path, so the three cannot drift.
void apply_conv_postops(Tensor3& values, const NetLayer& layer);
/// residual-join post-ops: clamp (no shift — the join adds already-
/// requantized activations), then ReLU.
void apply_join_postops(Tensor3& values, const NetLayer& layer);

struct NetworkResult {
  Tensor3 features{1, 1, 1};
  std::vector<i64> logits;
  bool has_logits = false;
};

/// A whole-network program: an ordered list of NetLayers plus the forward
/// semantics. This is what a serving session executes layer by layer — the
/// network executor is wired to a ConvServer by lowering the stack into a
/// serve::NetworkProgram (one registered plan per conv layer).
struct LayerStack {
  std::vector<NetLayer> layers;

  /// Conv executor with explicit geometry: (input, weights, stride, pad) ->
  /// raw sum-products. Generalizes ConvFn (which is stride-1 'same' only).
  using ConvExec =
      std::function<Tensor3(const Tensor3&, const Tensor4&, std::size_t, std::size_t)>;

  /// The cleartext conv2d executor.
  static ConvExec reference_executor();

  /// Execute the program. layer_outputs (optional) records every layer's
  /// post-op activation — FC layers record their logits as a 1x1xF tensor —
  /// which is what the batched-vs-serial bit-identity oracle compares.
  NetworkResult forward(const Tensor3& x, const ConvExec& conv,
                        std::vector<Tensor3>* layer_outputs = nullptr) const;

  /// Shape chain: output shape of `layer` for an input of shape `in`
  /// (std::invalid_argument on underflow / mismatch).
  static Shape3 layer_output_shape(Shape3 in, const NetLayer& layer);

  /// Lift a SmallQuantNet into the program form (bit-identical forward).
  static LayerStack from_quant_net(const SmallQuantNet& net);

  /// A ResNet-18-shaped stack scaled to software-tractable sizes: stem,
  /// two stages of two residual blocks each, a strided downsample between
  /// the stages (channels double), and an FC head. Preserves the geometry
  /// classes the paper's workload exercises (stride phases, residual joins,
  /// FC) at bench-friendly channel counts.
  static LayerStack resnet18_like(std::size_t in_c, std::size_t width, std::size_t spatial,
                                  std::size_t classes, int w_bits, int a_bits,
                                  std::mt19937_64& rng);
};

/// stem conv -> depth x residual blocks -> flatten -> classifier head.
struct SmallQuantNet {
  Tensor4 stem;  // in_c -> width, 3x3 'same'
  int stem_shift = 4;
  std::vector<QuantizedBlock> blocks;
  SyntheticClassifier head;
  int act_bits = 4;

  static SmallQuantNet random(std::size_t in_c, std::size_t width, std::size_t depth,
                              std::size_t classes, std::size_t spatial, int w_bits, int a_bits,
                              std::mt19937_64& rng);

  /// Feature extraction through stem + blocks with the given conv executor.
  Tensor3 features(const Tensor3& x, const ConvFn& conv) const;

  /// Argmax class.
  std::size_t predict(const Tensor3& x, const ConvFn& conv) const;
};

}  // namespace flash::tensor
