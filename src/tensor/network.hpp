// A small synthetic quantized CNN assembled from the residual blocks — the
// end-to-end inference substrate. The convolution executor is injectable so
// the same network runs on the cleartext reference path or through the
// hybrid HE/2PC protocol (core::FlashAccelerator provides that executor),
// which is how the integration example and tests check full-network
// equivalence.
#pragma once

#include <functional>

#include "tensor/resnet.hpp"

namespace flash::tensor {

/// A stride-1 'same' convolution executor: takes the (unpadded) input and
/// the weights, returns the raw sum-products.
using ConvFn = std::function<Tensor3(const Tensor3&, const Tensor4&)>;

/// The cleartext reference executor.
ConvFn reference_conv();

/// stem conv -> depth x residual blocks -> flatten -> classifier head.
struct SmallQuantNet {
  Tensor4 stem;  // in_c -> width, 3x3 'same'
  int stem_shift = 4;
  std::vector<QuantizedBlock> blocks;
  SyntheticClassifier head;
  int act_bits = 4;

  static SmallQuantNet random(std::size_t in_c, std::size_t width, std::size_t depth,
                              std::size_t classes, std::size_t spatial, int w_bits, int a_bits,
                              std::mt19937_64& rng);

  /// Feature extraction through stem + blocks with the given conv executor.
  Tensor3 features(const Tensor3& x, const ConvFn& conv) const;

  /// Argmax class.
  std::size_t predict(const Tensor3& x, const ConvFn& conv) const;
};

}  // namespace flash::tensor
