// Shard worker: the per-process serving loop on the far side of a router
// socketpair (ARCHITECTURE.md §13).
//
// A worker is strictly single-threaded — it wraps a ConvServer in manual
// dispatch mode (dispatchers = 0) and alternates between reading frames and
// running batches on its own thread. Shared-nothing by construction: the
// worker builds its own BfvContext per distinct parameter set and its own
// plan/transform caches from the PlanSpecWire bodies the router replays, so
// a freshly forked (or respawned) worker reaches an identical serving state
// from the registration stream alone. Plan ids are worker-local and
// deterministic (registration order), which is what lets the router verify
// a respawned worker rebuilt the same id space before resending work.
#pragma once

#include <cstdint>

#include "serve/conv_server.hpp"
#include "wire/wire_format.hpp"

namespace flash::shard {

struct WorkerOptions {
  /// Decryption-correctness gate applied at plan registration; the verdict
  /// travels back in the kRegisterPlanAck (warm-up handshake).
  serve::CertifyPolicy certify = serve::CertifyPolicy::kWarn;
  /// Max same-plan requests fused into one dispatch.
  std::size_t max_batch = 8;
  /// Modeled accelerator dwell per request (ns). The worker sleeps
  /// batch_size * dwell_ns after computing a batch, standing in for the
  /// round-trip a request spends on one FLASH accelerator unit: each shard
  /// fronts one unit, so dwell overlaps across shards while host compute
  /// serializes on a shared core. 0 disables the model.
  std::uint64_t dwell_ns = 0;
  /// Frame-size cap for this worker's channel.
  std::uint64_t max_frame_bytes = wire::kMaxFrameBytes;
};

/// Serve frames on `fd` until a kShutdown frame or EOF (router gone); returns
/// the process exit code. The forked child must call this and `_exit` with
/// the result — never return into the parent's stack/atexit state.
int run_worker(int fd, std::uint64_t shard_index, const WorkerOptions& options);

}  // namespace flash::shard
