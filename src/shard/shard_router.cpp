#include "shard/shard_router.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace flash::shard {

namespace {

using wire::Frame;
using wire::MsgType;

/// Parent-side socket fds of every live worker, process-wide. A forked child
/// inherits every other worker's router-end fd; unless it closes them, a
/// worker that the router drops never sees EOF (the dead fd stays open in a
/// sibling). The registry mutex is held across socketpair+fork+insert so a
/// child's inherited snapshot is always exact.
struct FdRegistry {
  std::mutex registry_mu;
  std::set<int> fds;
};
FdRegistry& fd_registry() {
  static FdRegistry r;
  return r;
}

}  // namespace

const char* to_string(ShardRequestState s) {
  switch (s) {
    case ShardRequestState::kPending: return "pending";
    case ShardRequestState::kDone: return "done";
    case ShardRequestState::kFailed: return "failed";
    case ShardRequestState::kCancelled: return "cancelled";
    case ShardRequestState::kDeadlineExceeded: return "deadline_exceeded";
    case ShardRequestState::kRejected: return "rejected";
  }
  return "?";
}

// --- future ----------------------------------------------------------------

struct ShardFuture::Shared {
  ShardRouter* router = nullptr;
  std::size_t plan = 0;
  std::size_t shard = 0;
  std::uint64_t seq = 0;
  std::uint64_t stream = 0;
  std::optional<serve::Clock::time_point> deadline;
  tensor::Tensor3 x{1, 1, 1};  // retained so recovery can resend
  bool sent = false;           // written to some worker incarnation (w.mu)
  bool counted = false;        // included in pending_total_

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  ShardRequestState state = ShardRequestState::kPending;
  protocol::ConvRunnerResult result;
  std::string error;
};

void ShardFuture::wait() const {
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->cv.wait(lock, [&] { return shared_->state != ShardRequestState::kPending; });
}

bool ShardFuture::wait_for(std::chrono::nanoseconds d) const {
  std::unique_lock<std::mutex> lock(shared_->mu);
  return shared_->cv.wait_for(lock, d,
                              [&] { return shared_->state != ShardRequestState::kPending; });
}

bool ShardFuture::done() const { return state() != ShardRequestState::kPending; }

ShardRequestState ShardFuture::state() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state;
}

const protocol::ConvRunnerResult& ShardFuture::result() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  if (shared_->state != ShardRequestState::kDone) {
    throw std::logic_error("ShardFuture::result() in state " +
                           std::string(to_string(shared_->state)));
  }
  return shared_->result;
}

std::string ShardFuture::error() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->error;
}

std::uint64_t ShardFuture::stream() const { return shared_->stream; }
std::size_t ShardFuture::shard() const { return shared_->shard; }

// --- router ----------------------------------------------------------------

ShardRouter::ShardRouter(RouterOptions options) : options_(options) {
  if (options_.shards == 0) throw std::invalid_argument("ShardRouter: shards must be >= 1");
  workers_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->index = i;
  }
  // Fork every worker BEFORE any reader/writer thread exists: the forking
  // thread is the only thread, so a child never inherits a mid-operation
  // lock.
  for (auto& w : workers_) {
    std::size_t attempts = 0;
    std::shared_ptr<wire::FrameChannel> channel;
    while ((channel = spawn_worker(*w)) == nullptr) {
      if (++attempts > options_.max_respawns) {
        w->dead = true;
        break;
      }
    }
    w->channel = std::move(channel);  // null iff dead
  }
  for (auto& w : workers_) {
    if (!w->dead) {
      Worker* wp = w.get();
      w->reader = std::thread([this, wp] { reader_loop(*wp); });
      w->writer = std::thread([this, wp] { writer_loop(*wp); });
    }
  }
}

ShardRouter::~ShardRouter() {
  drain();
  stopping_.store(true);
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    if (w->channel != nullptr && !w->dead) {
      Frame f;
      f.type = MsgType::kShutdown;
      f.seq = w->next_seq++;
      enqueue_locked(*w, std::move(f));  // best effort; EOF wakes the reader either way
    }
  }
  // Writers stop only after draining their outboxes — the shutdown frame
  // must actually reach a live worker or its reader never sees EOF.
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->out_mu);
      w->writer_stop = true;
    }
    w->out_cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->writer.joinable()) w->writer.join();
  }
  for (auto& w : workers_) {
    if (w->reader.joinable()) w->reader.join();
  }
  for (auto& w : workers_) {
    if (w->pid > 0) {
      int status = 0;
      ::waitpid(w->pid, &status, 0);
    }
    std::lock_guard<std::mutex> lock(w->mu);
    if (w->channel != nullptr) {
      std::lock_guard<std::mutex> reg(fd_registry().registry_mu);
      fd_registry().fds.erase(w->channel->fd());
    }
    w->channel.reset();
  }
}

std::shared_ptr<wire::FrameChannel> ShardRouter::spawn_worker(Worker& w) {
  int sv[2] = {-1, -1};
  pid_t pid = -1;
  {
    // Hold the registry lock across socketpair+fork so the child's inherited
    // fd set is exactly the registered set (no sibling's fresh fd leaks in).
    std::lock_guard<std::mutex> reg(fd_registry().registry_mu);
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return nullptr;
    if (options_.socket_buffer_bytes > 0) {
      for (int fd : sv) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.socket_buffer_bytes,
                     sizeof(options_.socket_buffer_bytes));
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options_.socket_buffer_bytes,
                     sizeof(options_.socket_buffer_bytes));
      }
    }
    // Respawns fork() with sibling reader/writer threads live and the child
    // then runs non-async-signal-safe code (ConvServer construction
    // allocates). glibc reinitializes its allocator locks across fork, which
    // is what makes this safe; a libc without that guarantee would need
    // fork+exec of a worker binary here instead.
    pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return nullptr;
    }
    if (pid == 0) {
      // Child: drop every other worker's router-end fd, then serve. Never
      // return into the parent's stack — _exit skips atexit/static dtors.
      ::close(sv[0]);
      for (int fd : fd_registry().fds) ::close(fd);
      WorkerOptions wopts;
      wopts.certify = options_.certify;
      wopts.max_batch = options_.worker_max_batch;
      wopts.dwell_ns = options_.worker_dwell_ns;
      wopts.max_frame_bytes = options_.max_frame_bytes;
      ::_exit(run_worker(sv[1], w.index, wopts));
    }
    ::close(sv[1]);
    fd_registry().fds.insert(sv[0]);
  }

  auto channel = std::make_shared<wire::FrameChannel>(sv[0], options_.max_frame_bytes);

  // Warm-up handshake, read/written directly: the channel is still private
  // to the calling thread (the ctor runs pre-threads; recovery publishes
  // only after registration replay), so no writer-thread interleaving.
  bool ok = false;
  try {
    Frame hello;
    hello.type = MsgType::kHello;
    hello.seq = 0;
    wire::ByteWriter body;
    wire::encode(wire::HelloBody{w.index, 0}, body);
    hello.body = body.take();
    if (channel->write_frame(hello)) {
      const std::optional<Frame> ack = channel->read_frame();
      ok = ack.has_value() && ack->type == MsgType::kHelloAck;
    }
  } catch (const wire::WireError&) {
    ok = false;
  }
  if (!ok) {
    {
      std::lock_guard<std::mutex> reg(fd_registry().registry_mu);
      fd_registry().fds.erase(sv[0]);
    }
    channel.reset();
    int status = 0;
    ::waitpid(pid, &status, 0);
    return nullptr;
  }

  std::lock_guard<std::mutex> lock(w.mu);
  w.pid = pid;
  return channel;
}

void ShardRouter::enqueue_locked(Worker& w, wire::Frame frame) {
  {
    std::lock_guard<std::mutex> lock(w.out_mu);
    w.outbox.push_back(OutFrame{w.epoch, std::move(frame)});
  }
  w.out_cv.notify_one();
}

void ShardRouter::writer_loop(Worker& w) {
  for (;;) {
    OutFrame item;
    {
      std::unique_lock<std::mutex> lock(w.out_mu);
      w.out_cv.wait(lock, [&] { return w.writer_stop || !w.outbox.empty(); });
      if (w.outbox.empty()) return;  // stopped and drained
      item = std::move(w.outbox.front());
      w.outbox.pop_front();
    }
    std::shared_ptr<wire::FrameChannel> channel;
    {
      std::lock_guard<std::mutex> lock(w.mu);
      // A stale epoch means the frame targeted a dead incarnation; recovery
      // already re-enqueued whatever still needs sending.
      if (item.epoch != w.epoch || w.channel == nullptr) continue;
      channel = w.channel;
    }
    try {
      channel->write_frame(item.frame);  // failure -> reader sees EOF -> recovery
    } catch (const wire::WireError&) {
    }
  }
}

void ShardRouter::reader_loop(Worker& w) {
  for (;;) {
    wire::FrameChannel* channel = nullptr;
    {
      std::lock_guard<std::mutex> lock(w.mu);
      if (w.dead) return;
      channel = w.channel.get();
    }
    if (channel == nullptr) return;

    std::optional<Frame> frame;
    bool broken = false;
    try {
      frame = channel->read_frame();
    } catch (const wire::WireError&) {
      broken = true;  // garbage on the socket: treat like a death
    }
    if (broken || !frame.has_value()) {
      if (stopping_.load()) return;
      recover(w);
      std::lock_guard<std::mutex> lock(w.mu);
      if (w.dead) return;
      continue;
    }

    switch (frame->type) {
      case MsgType::kResult: {
        std::shared_ptr<ShardFuture::Shared> shared;
        {
          std::lock_guard<std::mutex> lock(w.mu);
          auto it = w.pending.find(frame->seq);
          if (it == w.pending.end()) break;  // late duplicate: dropped (idempotency)
          shared = it->second;
          w.pending.erase(it);
        }
        try {
          wire::ByteReader r(frame->body);
          wire::ResultBody body = wire::decode_result(r);
          if (body.ok) {
            finish(shared, ShardRequestState::kDone, std::move(body.result), {});
          } else {
            finish(shared, ShardRequestState::kFailed, {}, std::move(body.error));
          }
        } catch (const wire::WireError& e) {
          finish(shared, ShardRequestState::kFailed, {},
                 std::string("malformed result frame: ") + e.what());
        }
        break;
      }
      case MsgType::kHelloAck:
      case MsgType::kRegisterPlanAck:
      case MsgType::kMetricsReport:
      case MsgType::kShutdownAck: {
        std::shared_ptr<ControlWaiter> waiter;
        {
          std::lock_guard<std::mutex> lock(w.mu);
          auto it = w.control.find(frame->seq);
          if (it == w.control.end()) break;  // unsolicited / post-death ack: dropped
          waiter = it->second;
          w.control.erase(it);
        }
        {
          std::lock_guard<std::mutex> lock(waiter->mu);
          waiter->done = true;
          waiter->ok = true;
          waiter->reply = std::move(*frame);
        }
        waiter->cv.notify_all();
        break;
      }
      default:
        break;  // router-to-worker types have no business arriving here
    }
  }
}

void ShardRouter::recover(Worker& w) {
  for (;;) {
    // Reap the dead incarnation and quarantine the channel. Bumping the
    // epoch invalidates every queued outbound frame: the writer thread drops
    // them, and the resend below re-enqueues what still matters under the
    // new epoch.
    std::vector<std::shared_ptr<ControlWaiter>> orphaned_control;
    pid_t dead_pid = -1;
    {
      std::lock_guard<std::mutex> lock(w.mu);
      if (w.channel != nullptr) {
        std::lock_guard<std::mutex> reg(fd_registry().registry_mu);
        fd_registry().fds.erase(w.channel->fd());
      }
      w.channel.reset();
      w.epoch++;
      w.recovering = true;
      dead_pid = w.pid;
      w.pid = -1;
      for (auto& [seq, waiter] : w.control) orphaned_control.push_back(waiter);
      w.control.clear();
      std::lock_guard<std::mutex> out(w.out_mu);
      w.outbox.clear();
    }
    if (dead_pid > 0) {
      int status = 0;
      ::waitpid(dead_pid, &status, 0);
    }
    // In-flight control round-trips cannot be replayed (their callers hold
    // the retry loop); fail them now so they re-issue against the respawn.
    for (auto& waiter : orphaned_control) {
      {
        std::lock_guard<std::mutex> lock(waiter->mu);
        waiter->done = true;
        waiter->ok = false;
      }
      waiter->cv.notify_all();
    }

    if (stopping_.load() || w.respawns >= options_.max_respawns) {
      fail_all_pending(w, "shard " + std::to_string(w.index) + " permanently failed");
      return;
    }
    w.respawns++;
    metrics_.respawns.inc();

    // The fresh channel stays private to this thread until the replay below
    // succeeds — the writer thread only ever sees a published channel, so
    // nothing can interleave with the replay round-trips.
    std::shared_ptr<wire::FrameChannel> channel = spawn_worker(w);
    if (channel == nullptr) continue;  // spend another respawn attempt
    const auto drop_channel = [&channel] {
      std::lock_guard<std::mutex> reg(fd_registry().registry_mu);
      fd_registry().fds.erase(channel->fd());
      channel.reset();  // EOF stops the fresh worker; next loop reaps w.pid
    };

    // Replay every registration for this shard in original order. Plan ids
    // are deterministic registration indices, so the acks must reproduce the
    // recorded local ids — anything else means the rebuilt worker is not in
    // the state the router routes against.
    std::vector<std::pair<std::uint64_t, wire::Bytes>> replay;  // (local_id, body)
    {
      std::lock_guard<std::mutex> lock(plans_mu_);
      for (const auto& plan : plans_) {
        if (plan->shard == w.index && plan->verdict != wire::PlanVerdict::kRejected) {
          replay.emplace_back(plan->local_id, plan->body);
        }
      }
    }
    std::sort(replay.begin(), replay.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    bool replay_ok = true;
    for (const auto& [local_id, body] : replay) {
      // Direct round-trip: this thread owns the still-private channel.
      Frame f;
      f.type = MsgType::kRegisterPlan;
      f.seq = 0;
      f.body = body;
      std::optional<Frame> ack;
      try {
        if (channel->write_frame(f)) ack = channel->read_frame();
      } catch (const wire::WireError&) {
        ack = std::nullopt;
      }
      if (!ack.has_value() || ack->type != MsgType::kRegisterPlanAck) {
        replay_ok = false;
        break;
      }
      wire::ByteReader r(ack->body);
      const wire::RegisterPlanAck parsed = wire::decode_register_plan_ack(r);
      if (parsed.verdict == wire::PlanVerdict::kRejected || parsed.plan_id != local_id) {
        replay_ok = false;
        break;
      }
    }
    if (!replay_ok) {
      drop_channel();
      continue;  // died (or diverged) mid-replay: next attempt
    }
    if (stopping_.load()) {
      // Shutdown raced with this recovery: the destructor's shutdown sweep
      // may already have passed this shard while its channel was
      // quarantined, so going live now would leave a worker no one stops.
      drop_channel();
      fail_all_pending(w, "router stopping");
      return;
    }

    // Go live: publish the channel, then re-enqueue still-pending requests
    // in seq order under w.mu — submitters stay blocked on the lock, so
    // nothing interleaves between replayed traffic and the recovering ->
    // live flip. Requests whose deadline lapsed while the shard was down
    // are expired here instead of resent.
    std::vector<std::shared_ptr<ShardFuture::Shared>> expired;
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.channel = std::move(channel);
      for (auto it = w.pending.begin(); it != w.pending.end();) {
        const std::shared_ptr<ShardFuture::Shared>& shared = it->second;
        if (shared->deadline.has_value() && serve::now() > *shared->deadline) {
          expired.push_back(shared);
          it = w.pending.erase(it);
          continue;
        }
        Frame f;
        f.type = MsgType::kSubmit;
        f.seq = it->first;
        wire::ByteWriter body;
        wire::SubmitBody submit;
        submit.plan_id = worker_plan_id(shared->plan);
        submit.stream = shared->stream;
        submit.x = shared->x;
        wire::encode(submit, body);
        f.body = body.take();
        enqueue_locked(w, std::move(f));
        if (shared->sent) metrics_.failed_over.inc();
        shared->sent = true;
        ++it;
      }
      w.recovering = false;
    }
    for (const auto& shared : expired) {
      finish(shared, ShardRequestState::kDeadlineExceeded, {}, "deadline expired during recovery");
    }
    return;
  }
}

std::uint64_t ShardRouter::worker_plan_id(std::size_t plan) const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  return plans_[plan]->local_id;
}

void ShardRouter::fail_all_pending(Worker& w, const std::string& why) {
  std::map<std::uint64_t, std::shared_ptr<ShardFuture::Shared>> orphans;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.dead = true;
    w.recovering = false;
    orphans.swap(w.pending);
  }
  for (const auto& [seq, shared] : orphans) {
    finish(shared, ShardRequestState::kRejected, {}, why);
  }
}

void ShardRouter::finish(const std::shared_ptr<ShardFuture::Shared>& shared,
                         ShardRequestState state, protocol::ConvRunnerResult result,
                         std::string error) {
  {
    std::lock_guard<std::mutex> lock(shared->mu);
    if (shared->state != ShardRequestState::kPending) return;
    // Metrics and the drain count settle BEFORE the terminal state publishes:
    // once a waiter can observe the state, drain() may return and the router
    // may be destroyed (same discipline as ConvFuture::cancel).
    switch (state) {
      case ShardRequestState::kDone: metrics_.completed.inc(); break;
      case ShardRequestState::kFailed: metrics_.failed.inc(); break;
      case ShardRequestState::kCancelled: metrics_.cancelled.inc(); break;
      case ShardRequestState::kDeadlineExceeded: metrics_.deadline_expired.inc(); break;
      case ShardRequestState::kRejected: metrics_.rejected.inc(); break;
      case ShardRequestState::kPending: break;
    }
    if (shared->counted) {
      std::lock_guard<std::mutex> dlock(drain_mu_);
      --pending_total_;
      drain_cv_.notify_all();
    }
    shared->state = state;
    shared->result = std::move(result);
    shared->error = std::move(error);
  }
  shared->cv.notify_all();
}

std::optional<Frame> ShardRouter::control_roundtrip(Worker& w, MsgType type, wire::Bytes body) {
  auto waiter = std::make_shared<ControlWaiter>();
  {
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.dead || w.recovering || w.channel == nullptr) return std::nullopt;
    Frame f;
    f.type = type;
    f.seq = w.next_seq++;
    f.body = std::move(body);
    w.control[f.seq] = waiter;
    enqueue_locked(w, std::move(f));
  }
  // If the write fails (or the frame goes stale before the writer thread
  // reaches it), the reader observes the death and recovery fails this
  // waiter — there is no hang path.
  std::unique_lock<std::mutex> lock(waiter->mu);
  waiter->cv.wait(lock, [&] { return waiter->done; });
  if (!waiter->ok) return std::nullopt;
  return std::move(waiter->reply);
}

ShardPlanId ShardRouter::register_plan(const wire::PlanSpecWire& spec) {
  wire::ByteWriter body_writer;
  wire::encode(spec, body_writer);
  const wire::Bytes body = body_writer.take();

  {
    std::lock_guard<std::mutex> lock(plans_mu_);
    for (std::size_t i = 0; i < plans_.size(); ++i) {
      if (plans_[i]->body == body) return i;
    }
  }

  const std::size_t shard = wire::fnv1a(body) % workers_.size();
  Worker& w = *workers_[shard];

  wire::RegisterPlanAck ack;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(w.mu);
      if (w.dead) {
        throw std::runtime_error("register_plan: shard " + std::to_string(shard) +
                                 " permanently failed");
      }
    }
    std::optional<Frame> reply = control_roundtrip(w, MsgType::kRegisterPlan, body);
    if (reply.has_value()) {
      wire::ByteReader r(reply->body);
      ack = wire::decode_register_plan_ack(r);
      break;
    }
    // Worker died mid-registration (or is mid-recovery): wait and re-issue —
    // registration is idempotent worker-side (content-keyed dedupe).
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  if (ack.verdict == wire::PlanVerdict::kRejected) {
    throw std::invalid_argument("register_plan: shard refused plan: " + ack.detail);
  }

  std::lock_guard<std::mutex> lock(plans_mu_);
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    if (plans_[i]->body == body) return i;  // raced with an identical registration
  }
  auto plan = std::make_unique<RouterPlan>();
  plan->shard = shard;
  plan->local_id = ack.plan_id;
  plan->body = body;
  plan->verdict = ack.verdict;
  plan->detail = ack.detail;
  plans_.push_back(std::move(plan));
  return plans_.size() - 1;
}

ShardFuture ShardRouter::submit(ShardPlanId plan, const tensor::Tensor3& x,
                                ShardSubmitOptions options) {
  RouterPlan* rp = nullptr;
  {
    std::lock_guard<std::mutex> lock(plans_mu_);
    if (plan >= plans_.size()) throw std::invalid_argument("submit: unknown plan id");
    rp = plans_[plan].get();
  }
  // Counted only once the request is known to reach a terminal state — an
  // unknown-plan throw above leaves no metrics trace, preserving
  // terminal() == submitted.
  metrics_.submitted.inc();

  auto shared = std::make_shared<ShardFuture::Shared>();
  shared->router = this;
  shared->plan = plan;
  shared->shard = rp->shard;
  shared->stream = options.stream.has_value()
                       ? *options.stream
                       : rp->next_stream.fetch_add(1, std::memory_order_relaxed);
  shared->x = x;
  if (options.timeout.has_value()) {
    shared->deadline = serve::now() + *options.timeout;
  } else {
    shared->deadline = options.deadline;
  }

  // Router-side deadline gate on the monotonic serve clock: an
  // already-expired request never crosses the wire.
  if (shared->deadline.has_value() && serve::now() > *shared->deadline) {
    finish(shared, ShardRequestState::kDeadlineExceeded, {}, "deadline expired at submission");
    return ShardFuture(shared);
  }

  // Encode outside w.mu (bulk work), and gate on the channel's frame cap so
  // an oversized request fails alone at admission — written anyway it would
  // be rejected at the worker's header gate, killing the channel and burning
  // the shard's respawn budget on a guaranteed-to-repeat frame.
  Frame f;
  f.type = MsgType::kSubmit;
  {
    wire::ByteWriter body;
    wire::SubmitBody submit;
    submit.plan_id = rp->local_id;
    submit.stream = shared->stream;
    submit.x = shared->x;
    wire::encode(submit, body);
    f.body = body.take();
  }
  if (wire::frame_bytes_for_body(f.body.size()) > options_.max_frame_bytes) {
    finish(shared, ShardRequestState::kRejected, {},
           "request frame exceeds max_frame_bytes (" +
               std::to_string(wire::frame_bytes_for_body(f.body.size())) + " > " +
               std::to_string(options_.max_frame_bytes) + ")");
    return ShardFuture(shared);
  }

  Worker& w = *workers_[rp->shard];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.dead || stopping_.load()) {
      // finish() outside w.mu (lock order: shared->mu before w.mu, never
      // the reverse); fall through to the unlocked reject below.
    } else {
      shared->seq = w.next_seq++;
      shared->counted = true;
      w.pending[shared->seq] = shared;
      {
        std::lock_guard<std::mutex> dlock(drain_mu_);
        ++pending_total_;
      }
      if (!w.recovering) {
        f.seq = shared->seq;
        // Hand the frame to the writer thread: submit never blocks on the
        // socket, so a full buffer cannot wedge w.mu against the reader.
        enqueue_locked(w, std::move(f));
        shared->sent = true;
      }
      return ShardFuture(shared);
    }
  }
  finish(shared, ShardRequestState::kRejected,
         {}, stopping_.load() ? "router stopping" : "shard permanently failed");
  return ShardFuture(shared);
}

bool ShardFuture::cancel() {
  if (shared_ == nullptr) return false;
  // Lock order: shared->mu, then worker.mu (the reader path never holds
  // worker.mu while taking shared->mu, so this cannot deadlock).
  std::lock_guard<std::mutex> lock(shared_->mu);
  if (shared_->state != ShardRequestState::kPending) return false;
  // state == kPending implies the router has not drained, hence is alive.
  return shared_->router->cancel_locked(*shared_);
}

bool ShardRouter::cancel_locked(ShardFuture::Shared& shared) {
  Worker& w = *workers_[shared.shard];
  std::lock_guard<std::mutex> lock(w.mu);
  auto it = w.pending.find(shared.seq);
  if (it == w.pending.end()) return false;  // a response is being finished right now
  w.pending.erase(it);
  // Entire terminal transition under shared.mu (held by the caller): metrics
  // and the drain count settle before the state publishes.
  metrics_.cancelled.inc();
  if (shared.counted) {
    std::lock_guard<std::mutex> dlock(drain_mu_);
    --pending_total_;
    drain_cv_.notify_all();
  }
  shared.state = ShardRequestState::kCancelled;
  shared.error = "cancelled";
  shared.cv.notify_all();
  return true;
}

void ShardRouter::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return pending_total_ == 0; });
}

void ShardRouter::kill_worker(std::size_t shard) {
  Worker& w = *workers_.at(shard);
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.dead || w.pid <= 0) return;
    pid = w.pid;
  }
  ::kill(pid, SIGKILL);
  metrics_.kills.inc();
}

std::size_t ShardRouter::shard_of(ShardPlanId plan) const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  return plans_.at(plan)->shard;
}

wire::PlanVerdict ShardRouter::plan_verdict(ShardPlanId plan) const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  return plans_.at(plan)->verdict;
}

std::string ShardRouter::metrics_json() const {
  std::ostringstream out;
  out << "{\"counters\": {"
      << "\"submitted\": " << metrics_.submitted.value()
      << ", \"completed\": " << metrics_.completed.value()
      << ", \"failed\": " << metrics_.failed.value()
      << ", \"cancelled\": " << metrics_.cancelled.value()
      << ", \"deadline_expired\": " << metrics_.deadline_expired.value()
      << ", \"rejected\": " << metrics_.rejected.value()
      << ", \"failed_over\": " << metrics_.failed_over.value()
      << ", \"respawns\": " << metrics_.respawns.value()
      << ", \"kills\": " << metrics_.kills.value()
      << "}, \"shards\": " << workers_.size() << "}";
  return out.str();
}

std::string ShardRouter::worker_metrics_json(std::size_t shard) {
  Worker& w = *workers_.at(shard);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(w.mu);
      if (w.dead) return {};
    }
    std::optional<Frame> reply = control_roundtrip(w, MsgType::kMetricsQuery, {});
    if (reply.has_value()) {
      wire::ByteReader r(reply->body);
      return wire::decode_string(r);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace flash::shard
