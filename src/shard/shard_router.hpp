// ShardRouter: multi-process sharded serving front-end (ARCHITECTURE.md §13).
//
// The router forks N shard workers (shard_worker.hpp), each on its own Unix
// socketpair, and hashes plan identities onto them: FNV-1a over the encoded
// PlanSpecWire bytes, mod N. All requests for a plan land on one shard, so
// the per-shard transform/plan caches stay shared-nothing — no cross-process
// state, no cache-coherence traffic, and a request's bytes depend only on
// (plan, stream), never on which shard count is configured.
//
// Warm-up handshake: register_plan is a synchronous round-trip; the worker
// certifies the plan (CertifyPolicy) before acking, so a cold shard never
// admits traffic for a plan it hasn't proven (under kEnforce) or at least
// vetted (kWarn). The router records each plan's encoded body and verdict.
//
// Failure state machine (chaos contract, exercised by test_serve_stress):
//
//     live --worker death--> recovering --respawn + replay--> live
//                                \--budget exhausted--> dead
//
// On a worker death the router respawns the process, replays every
// registration for that shard in original order (verifying the worker-local
// plan ids match — they are deterministic registration indices), then
// resends still-pending requests in sequence order. Idempotency is by seq:
// responses carry the request seq, a late duplicate finds no pending entry
// and is dropped, and a resent request simply fills the same entry. Requests
// whose deadline lapsed during recovery finish kDeadlineExceeded without
// being resent. After max_respawns deaths a shard is declared dead and its
// pending work fails — metrics conservation (terminal() == submitted) holds
// through every path.
//
// Write path: every socket write goes through a per-worker writer thread
// draining an epoch-tagged outbound queue. No lock is ever held across a
// blocking write, so a submit burst that fills the router->worker socket
// buffer stalls only the writer thread — the reader keeps draining results
// and the worker keeps making progress (the classic full-buffers-both-ways
// deadlock cannot form). Requests whose encoded frame exceeds
// max_frame_bytes are rejected at submit() instead of poisoning the channel
// at the worker's header gate.
//
// Determinism: a request stream routed through any shard count is
// bit-identical to bare ConvRunner::run with the same (seed, stream << 32) —
// enforced for 1/2/4 shards, with and without mid-trace kills, by
// HConvOracle::run_trace's sharded backend.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>

#include <sys/types.h>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/conv_server.hpp"
#include "serve/metrics.hpp"
#include "shard/shard_worker.hpp"
#include "wire/frame_io.hpp"

namespace flash::shard {

struct RouterOptions {
  std::size_t shards = 2;
  /// Forwarded to every worker (certification happens shard-side).
  serve::CertifyPolicy certify = serve::CertifyPolicy::kWarn;
  std::size_t worker_max_batch = 8;
  /// Modeled per-request accelerator dwell, forwarded to workers (see
  /// WorkerOptions::dwell_ns).
  std::uint64_t worker_dwell_ns = 0;
  std::uint64_t max_frame_bytes = wire::kMaxFrameBytes;
  /// Worker deaths tolerated per shard before it is declared dead.
  std::size_t max_respawns = 4;
  /// SO_SNDBUF/SO_RCVBUF applied to both ends of each worker socketpair
  /// (0 = OS default). A test knob: shrinking it makes full-socket-buffer
  /// backpressure reproducible with small frames.
  int socket_buffer_bytes = 0;
};

enum class ShardRequestState {
  kPending,
  kDone,
  kFailed,            // worker-side failure; error() carries the message
  kCancelled,
  kDeadlineExceeded,
  kRejected,          // shard dead / router stopping / worker refused
};
const char* to_string(ShardRequestState s);

/// Counters across all shards. Conservation invariant (chaos-checked):
/// terminal() == submitted once drained, through kills and respawns.
struct RouterMetrics {
  serve::Counter submitted;
  serve::Counter completed;
  serve::Counter failed;
  serve::Counter cancelled;
  serve::Counter deadline_expired;
  serve::Counter rejected;
  /// Requests resent to a respawned worker after a death (they had already
  /// been written to the old incarnation).
  serve::Counter failed_over;
  serve::Counter respawns;
  serve::Counter kills;  // kill_worker() calls (chaos injection)

  std::uint64_t terminal() const {
    return completed.value() + failed.value() + cancelled.value() +
           deadline_expired.value() + rejected.value();
  }
};

class ShardRouter;

/// Handle to one sharded request; mirrors serve::ConvFuture's surface.
/// Copyable, all copies share state; safe to wait on after the router died.
class ShardFuture {
 public:
  ShardFuture() = default;

  void wait() const;
  bool wait_for(std::chrono::nanoseconds d) const;
  bool done() const;
  ShardRequestState state() const;

  /// Valid iff state() == kDone (std::logic_error otherwise).
  const protocol::ConvRunnerResult& result() const;
  std::string error() const;
  std::uint64_t stream() const;
  std::size_t shard() const;

  /// Cancel if no response has arrived yet. True iff this call won; the
  /// worker may still compute the result, which is then dropped as a late
  /// duplicate (idempotency by seq).
  bool cancel();

 private:
  friend class ShardRouter;
  struct Shared;
  explicit ShardFuture(std::shared_ptr<Shared> shared) : shared_(std::move(shared)) {}
  std::shared_ptr<Shared> shared_;
};

using ShardPlanId = std::size_t;

struct ShardSubmitOptions {
  std::optional<serve::Clock::time_point> deadline;
  std::optional<std::chrono::nanoseconds> timeout;
  /// Determinism key; defaults to a per-plan admission counter.
  std::optional<std::uint64_t> stream;
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterOptions options = {});
  ~ShardRouter();  // drains, shuts workers down, reaps them

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Register a plan on its home shard (synchronous warm-up round-trip).
  /// Identical specs dedupe to one id. Under CertifyPolicy::kEnforce an
  /// unproven plan throws std::invalid_argument with the worker's detail.
  ShardPlanId register_plan(const wire::PlanSpecWire& spec);

  /// Admit one request; never blocks on compute (the write to the shard
  /// socket is the only I/O). Returns a terminal kRejected future if the
  /// plan's shard is dead.
  ShardFuture submit(ShardPlanId plan, const tensor::Tensor3& x, ShardSubmitOptions options = {});

  /// Wait until no request is pending on any shard.
  void drain();

  /// Chaos injection: SIGKILL shard's current worker process. The reader
  /// notices EOF and runs the recovery state machine. No-op on a dead shard.
  void kill_worker(std::size_t shard);

  std::size_t shards() const { return workers_.size(); }
  std::size_t shard_of(ShardPlanId plan) const;
  /// The worker-side verdict recorded at registration.
  wire::PlanVerdict plan_verdict(ShardPlanId plan) const;

  const RouterMetrics& metrics() const { return metrics_; }
  std::string metrics_json() const;
  /// Round-trip a kMetricsQuery to one shard (empty string if it is dead).
  std::string worker_metrics_json(std::size_t shard);

 private:
  struct ControlWaiter {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;  // false: worker died before answering
    wire::Frame reply;
  };

  /// One outbound frame, tagged with the channel incarnation it was queued
  /// for. The writer thread drops entries whose epoch no longer matches —
  /// recovery bumps the epoch and re-enqueues pending work itself, so a
  /// stale frame must never reach the replacement worker twice.
  struct OutFrame {
    std::uint64_t epoch = 0;
    wire::Frame frame;
  };

  struct Worker {
    std::size_t index = 0;
    mutable std::mutex mu;
    /// Current channel incarnation (null while recovering or dead). Shared
    /// so the writer thread can keep a quarantined incarnation alive across
    /// an in-flight write; no thread ever blocks on I/O while holding mu.
    std::shared_ptr<wire::FrameChannel> channel;
    std::uint64_t epoch = 0;  // bumped by recovery; guards stale outbox entries
    pid_t pid = -1;
    bool recovering = false;  // respawn in progress: enqueue, don't send
    bool dead = false;
    std::size_t respawns = 0;
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, std::shared_ptr<ShardFuture::Shared>> pending;
    std::map<std::uint64_t, std::shared_ptr<ControlWaiter>> control;
    std::thread reader;

    /// Outbound queue, drained by the per-worker writer thread — the only
    /// thread that performs (blocking) socket writes. Submitters, control
    /// round-trips, recovery, and shutdown all enqueue and return, so a full
    /// socket buffer backpressures the writer thread alone and can never
    /// deadlock against the reader (which needs mu to process results).
    std::mutex out_mu;
    std::condition_variable out_cv;
    std::deque<OutFrame> outbox;  // guarded by out_mu
    bool writer_stop = false;     // guarded by out_mu
    std::thread writer;
  };

  struct RouterPlan {
    std::size_t shard = 0;
    std::uint64_t local_id = 0;  // worker-local plan id
    wire::Bytes body;            // encoded PlanSpecWire (replayed on respawn)
    wire::PlanVerdict verdict = wire::PlanVerdict::kUncertified;
    std::string detail;
    std::atomic<std::uint64_t> next_stream{0};
  };

  friend class ShardFuture;

  /// Fork + handshake a fresh worker; records its pid but does NOT publish
  /// the returned channel into w.channel — the caller decides when the
  /// incarnation goes live (recovery keeps it private through registration
  /// replay). Null on failure.
  std::shared_ptr<wire::FrameChannel> spawn_worker(Worker& w);
  void reader_loop(Worker& w);
  void writer_loop(Worker& w);
  /// Queue a frame for the writer thread, tagged with the current epoch.
  /// Pre: caller holds w.mu (epoch and liveness are read under it).
  void enqueue_locked(Worker& w, wire::Frame frame);
  void recover(Worker& w);
  std::uint64_t worker_plan_id(std::size_t plan) const;
  std::optional<wire::Frame> control_roundtrip(Worker& w, wire::MsgType type, wire::Bytes body);
  void finish(const std::shared_ptr<ShardFuture::Shared>& shared, ShardRequestState state,
              protocol::ConvRunnerResult result, std::string error);
  void fail_all_pending(Worker& w, const std::string& why);
  /// Pre: caller holds shared.mu and shared.state == kPending.
  bool cancel_locked(ShardFuture::Shared& shared);

  RouterOptions options_;
  RouterMetrics metrics_;

  mutable std::mutex plans_mu_;
  std::vector<std::unique_ptr<RouterPlan>> plans_;

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::size_t pending_total_ = 0;  // guarded by drain_mu_
  std::atomic<bool> stopping_{false};
};

}  // namespace flash::shard
