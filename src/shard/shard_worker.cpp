#include "shard/shard_worker.hpp"

#include <chrono>
#include <deque>
#include <exception>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bfv/context.hpp"
#include "wire/frame_io.hpp"

namespace flash::shard {

namespace {

using wire::Frame;
using wire::MsgType;

struct PendingRequest {
  std::uint64_t seq = 0;
  serve::ConvFuture future;
};

class Worker {
 public:
  Worker(int fd, std::uint64_t shard_index, const WorkerOptions& options)
      : channel_(fd, options.max_frame_bytes), shard_index_(shard_index), options_(options) {
    serve::ServerOptions sopts;
    // The router already bounds what it sends; the worker-side queue only
    // ever holds one batch, so the bound is a formality.
    sopts.max_queue = options.max_batch + 1;
    sopts.max_batch = options.max_batch;
    sopts.dispatchers = 0;  // manual: this thread is the only dispatcher
    sopts.certify = options.certify;
    server_ = std::make_unique<serve::ConvServer>(sopts);
  }

  int run() {
    for (;;) {
      try {
        std::optional<Frame> frame = channel_.read_frame();
        if (!frame.has_value()) return 0;  // router gone: clean exit
        if (!handle(*frame)) return 0;     // kShutdown
      } catch (const wire::WireError&) {
        // Malformed traffic from the router — here or mid-coalescing inside
        // handle_submit: protocol bug, die loudly.
        return 2;
      }
    }
  }

 private:
  /// Returns false when the worker should exit (shutdown requested).
  bool handle(const Frame& frame) {
    switch (frame.type) {
      case MsgType::kHello: {
        wire::HelloBody body;
        body.shard_index = shard_index_;
        body.pid = static_cast<std::uint64_t>(::getpid());
        wire::ByteWriter w;
        wire::encode(body, w);
        send(MsgType::kHelloAck, frame.seq, w.take());
        return true;
      }
      case MsgType::kRegisterPlan:
        handle_register(frame);
        return true;
      case MsgType::kSubmit:
        return handle_submit(frame);
      case MsgType::kMetricsQuery: {
        wire::ByteWriter w;
        wire::encode(server_->metrics_json(), w);
        send(MsgType::kMetricsReport, frame.seq, w.take());
        return true;
      }
      case MsgType::kShutdown:
        send(MsgType::kShutdownAck, frame.seq, {});
        return false;
      default:
        // Worker-to-router types arriving here mean a broken router; ignore.
        return true;
    }
  }

  void handle_register(const Frame& frame) {
    wire::RegisterPlanAck ack;
    try {
      wire::ByteReader r(frame.body);
      const wire::PlanSpecWire spec = wire::decode_plan_spec(r);

      serve::PlanSpec plan;
      plan.ctx = context_for(spec.params);
      plan.backend = spec.backend;
      plan.approx_config = spec.approx_config;
      plan.protocol_seed = spec.protocol_seed;
      plan.weights = spec.weights;
      plan.stride = spec.stride;
      plan.pad = spec.pad;
      plan.in_h = spec.in_h;
      plan.in_w = spec.in_w;

      const serve::PlanId id = server_->register_plan(plan);
      ack.plan_id = id;
      const auto cert = server_->plan_certificate(id);
      if (!cert.has_value()) {
        ack.verdict = wire::PlanVerdict::kUncertified;
      } else if (cert->proven()) {
        ack.verdict = wire::PlanVerdict::kProven;
      } else {
        ack.verdict = wire::PlanVerdict::kUnproven;
        ack.detail = cert->overall.detail;
      }
    } catch (const std::exception& e) {
      // Covers both malformed plan bodies (WireError) and the kEnforce
      // refusal (std::invalid_argument from register_plan).
      ack.verdict = wire::PlanVerdict::kRejected;
      ack.detail = e.what();
    }
    wire::ByteWriter w;
    wire::encode(ack, w);
    send(MsgType::kRegisterPlanAck, frame.seq, w.take());
  }

  /// Returns false iff a control frame coalesced behind the batch asked the
  /// worker to shut down — the verdict must propagate to run(), or a
  /// kShutdown arriving inside the coalescing window would be acked and then
  /// ignored, leaving the worker (and the router's reader) blocked forever.
  bool handle_submit(const Frame& frame) {
    std::vector<PendingRequest> batch;
    std::optional<Frame> deferred;
    std::optional<wire::WireError> protocol_error;

    Frame current = frame;
    for (;;) {
      admit(current, batch);
      if (batch.size() >= options_.max_batch) break;
      // Opportunistic coalescing: more submits already queued on the socket
      // join this dispatch, so a router burst becomes one batched run.
      if (!channel_.readable(0)) break;
      std::optional<Frame> next;
      try {
        next = channel_.read_frame();
      } catch (const wire::WireError& e) {
        // The byte stream is desynced from here on. Finish and answer the
        // already-admitted batch (the write side is intact), then rethrow so
        // run() exits 2 immediately — same die-loudly contract as a
        // malformed frame between dispatches.
        protocol_error = e;
        break;
      }
      if (!next.has_value()) break;
      if (next->type != MsgType::kSubmit) {
        deferred = std::move(next);  // control frame: handle after the batch
        break;
      }
      current = std::move(*next);
    }

    while (server_->dispatch_once()) {
    }
    if (options_.dwell_ns != 0 && !batch.empty()) {
      // Modeled accelerator dwell (see WorkerOptions::dwell_ns).
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options_.dwell_ns * batch.size()));
    }

    for (const PendingRequest& p : batch) {
      wire::ResultBody body;
      if (p.future.state() == serve::RequestState::kDone) {
        body.ok = true;
        body.result = p.future.result();
      } else {
        body.ok = false;
        body.error = std::string(serve::to_string(p.future.state())) + ": " + p.future.error();
      }
      send_result(p.seq, body);
    }

    if (protocol_error.has_value()) throw *protocol_error;
    if (deferred.has_value()) return handle(*deferred);
    return true;
  }

  void admit(const Frame& frame, std::vector<PendingRequest>& batch) {
    try {
      wire::ByteReader r(frame.body);
      wire::SubmitBody body = wire::decode_submit(r);
      serve::SubmitOptions opts;
      opts.stream = body.stream;
      PendingRequest p;
      p.seq = frame.seq;
      p.future = server_->submit(static_cast<serve::PlanId>(body.plan_id), std::move(body.x), opts);
      batch.push_back(std::move(p));
    } catch (const std::exception& e) {
      wire::ResultBody body;
      body.ok = false;
      body.error = std::string("submit rejected: ") + e.what();
      send_result(frame.seq, body);
    }
  }

  /// Encode and send one result, degrading to an error body if the encoded
  /// frame would blow the channel's cap — an oversized result written anyway
  /// would be rejected at the router's header gate, read as a worker death,
  /// and recomputed identically until the respawn budget burned out.
  void send_result(std::uint64_t seq, const wire::ResultBody& body) {
    wire::ByteWriter w;
    wire::encode(body, w);
    wire::Bytes bytes = w.take();
    if (wire::frame_bytes_for_body(bytes.size()) > options_.max_frame_bytes) {
      wire::ResultBody too_big;
      too_big.ok = false;
      too_big.error = "result frame exceeds max_frame_bytes (" +
                      std::to_string(wire::frame_bytes_for_body(bytes.size())) + " > " +
                      std::to_string(options_.max_frame_bytes) + ")";
      wire::ByteWriter wr;
      wire::encode(too_big, wr);
      bytes = wr.take();
    }
    send(MsgType::kResult, seq, std::move(bytes));
  }

  /// One context per distinct parameter set, addresses stable for the
  /// server's non-owning PlanSpec pointers.
  const bfv::BfvContext* context_for(const bfv::BfvParams& params) {
    for (const bfv::BfvContext& ctx : contexts_) {
      const bfv::BfvParams& p = ctx.params();
      if (p.n == params.n && p.t == params.t && p.q == params.q &&
          p.error_sigma == params.error_sigma) {
        return &ctx;
      }
    }
    contexts_.emplace_back(params);
    return &contexts_.back();
  }

  void send(MsgType type, std::uint64_t seq, wire::Bytes body) {
    Frame out;
    out.type = type;
    out.seq = seq;
    out.body = std::move(body);
    channel_.write_frame(out);  // router gone mid-write: exit on next read
  }

  wire::FrameChannel channel_;
  std::uint64_t shard_index_;
  WorkerOptions options_;
  std::unique_ptr<serve::ConvServer> server_;
  std::deque<bfv::BfvContext> contexts_;
};

}  // namespace

int run_worker(int fd, std::uint64_t shard_index, const WorkerOptions& options) {
  try {
    Worker worker(fd, shard_index, options);
    return worker.run();
  } catch (...) {
    return 3;
  }
}

}  // namespace flash::shard
