#include "wire/wire_format.hpp"

#include <limits>

namespace flash::wire {

namespace {

/// Read a u64 length field and verify the buffer still holds `elem_bytes *
/// count` bytes (and count <= hard_cap) before the caller allocates.
std::uint64_t read_count(ByteReader& r, std::uint64_t hard_cap, std::uint64_t elem_bytes,
                         const char* what) {
  const std::uint64_t count = r.read_u64();
  if (count > hard_cap) throw WireError(std::string(what) + ": count over cap");
  if (count * elem_bytes > r.remaining()) {
    throw WireError(std::string(what) + ": count exceeds buffer");
  }
  return count;
}

void check_dims(std::uint64_t total, const char* what) {
  if (total > kMaxTensorElems) throw WireError(std::string(what) + ": too many elements");
}

}  // namespace

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kRegisterPlan: return "register_plan";
    case MsgType::kRegisterPlanAck: return "register_plan_ack";
    case MsgType::kSubmit: return "submit";
    case MsgType::kResult: return "result";
    case MsgType::kMetricsQuery: return "metrics_query";
    case MsgType::kMetricsReport: return "metrics_report";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kShutdownAck: return "shutdown_ack";
  }
  return "?";
}

const char* to_string(PlanVerdict v) {
  switch (v) {
    case PlanVerdict::kUncertified: return "uncertified";
    case PlanVerdict::kProven: return "proven";
    case PlanVerdict::kUnproven: return "unproven";
    case PlanVerdict::kRejected: return "rejected";
  }
  return "?";
}

Bytes encode_frame(const Frame& frame) {
  ByteWriter w;
  w.write_u64(kFrameMagic);
  w.write_u64(static_cast<std::uint64_t>(kPayloadPrefixBytes + frame.body.size()));
  w.write_u8(kWireVersion);
  w.write_u8(static_cast<std::uint8_t>(frame.type));
  w.write_u64(frame.seq);
  Bytes out = w.take();
  out.insert(out.end(), frame.body.begin(), frame.body.end());
  return out;
}

std::uint64_t decode_frame_header(const std::uint8_t* header, std::size_t header_len,
                                  std::uint64_t max_frame_bytes) {
  if (header_len < kFrameHeaderBytes) throw WireError("frame header: truncated");
  auto read_le64 = [&](std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(header[at + i]) << (8 * i);
    return v;
  };
  if (read_le64(0) != kFrameMagic) throw WireError("frame header: bad magic");
  const std::uint64_t payload_len = read_le64(8);
  // The length gate: rejected here, an adversarial 2^60 length never reaches
  // an allocator (the reader sizes its payload buffer from this value).
  if (payload_len < kPayloadPrefixBytes) throw WireError("frame header: payload too short");
  if (payload_len > max_frame_bytes) throw WireError("frame header: payload over cap");
  return payload_len;
}

Frame decode_payload(const Bytes& payload) {
  if (payload.size() < kPayloadPrefixBytes) throw WireError("frame payload: truncated");
  const std::uint8_t version = payload[0];
  if (version != kWireVersion) {
    throw WireError("frame payload: unsupported wire version " + std::to_string(version));
  }
  const std::uint8_t type = payload[1];
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kShutdownAck)) {
    throw WireError("frame payload: unknown message type " + std::to_string(type));
  }
  Frame f;
  f.type = static_cast<MsgType>(type);
  f.seq = 0;
  for (int i = 0; i < 8; ++i) {
    f.seq |= static_cast<std::uint64_t>(payload[2 + static_cast<std::size_t>(i)]) << (8 * i);
  }
  f.body.assign(payload.begin() + kPayloadPrefixBytes, payload.end());
  return f;
}

Frame decode_frame(const Bytes& buffer, std::uint64_t max_frame_bytes) {
  if (buffer.size() < kFrameHeaderBytes) throw WireError("frame: truncated header");
  const std::uint64_t payload_len =
      decode_frame_header(buffer.data(), buffer.size(), max_frame_bytes);
  if (buffer.size() < kFrameHeaderBytes + payload_len) throw WireError("frame: truncated payload");
  if (buffer.size() > kFrameHeaderBytes + payload_len) {
    throw WireError("frame: trailing bytes after payload");
  }
  const Bytes payload(buffer.begin() + kFrameHeaderBytes, buffer.end());
  return decode_payload(payload);
}

// --- tensors --------------------------------------------------------------

void encode(const tensor::Tensor3& t, ByteWriter& w) {
  w.write_u64(t.channels());
  w.write_u64(t.height());
  w.write_u64(t.width());
  for (tensor::i64 v : t.data()) w.write_i64(v);
}

tensor::Tensor3 decode_tensor3(ByteReader& r) {
  const std::uint64_t c = r.read_u64();
  const std::uint64_t h = r.read_u64();
  const std::uint64_t w = r.read_u64();
  if (c == 0 || h == 0 || w == 0 || c > kMaxTensorDim || h > kMaxTensorDim ||
      w > kMaxTensorDim) {
    throw WireError("tensor3: dimension out of range");
  }
  const std::uint64_t total = c * h * w;  // <= 2^36, no overflow
  check_dims(total, "tensor3");
  if (total * 8 > r.remaining()) throw WireError("tensor3: elements exceed buffer");
  tensor::Tensor3 t(static_cast<std::size_t>(c), static_cast<std::size_t>(h),
                    static_cast<std::size_t>(w));
  for (std::uint64_t i = 0; i < total; ++i) t.data()[i] = r.read_i64();
  return t;
}

void encode(const tensor::Tensor4& t, ByteWriter& w) {
  w.write_u64(t.out_channels());
  w.write_u64(t.in_channels());
  w.write_u64(t.kernel_h());
  w.write_u64(t.kernel_w());
  for (tensor::i64 v : t.data()) w.write_i64(v);
}

tensor::Tensor4 decode_tensor4(ByteReader& r) {
  const std::uint64_t m = r.read_u64();
  const std::uint64_t c = r.read_u64();
  const std::uint64_t kh = r.read_u64();
  const std::uint64_t kw = r.read_u64();
  if (m == 0 || c == 0 || kh == 0 || kw == 0 || m > kMaxTensorDim || c > kMaxTensorDim ||
      kh > kMaxTensorDim || kw > kMaxTensorDim) {
    throw WireError("tensor4: dimension out of range");
  }
  const std::uint64_t total = m * c * kh * kw;  // <= 2^48, no overflow
  check_dims(total, "tensor4");
  if (total * 8 > r.remaining()) throw WireError("tensor4: elements exceed buffer");
  tensor::Tensor4 t(static_cast<std::size_t>(m), static_cast<std::size_t>(c),
                    static_cast<std::size_t>(kh), static_cast<std::size_t>(kw));
  for (std::uint64_t i = 0; i < total; ++i) t.data()[i] = r.read_i64();
  return t;
}

void encode(const std::string& s, ByteWriter& w) {
  w.write_u64(s.size());
  for (char ch : s) w.write_u8(static_cast<std::uint8_t>(ch));
}

std::string decode_string(ByteReader& r) {
  const std::uint64_t len = read_count(r, kMaxStringBytes, 1, "string");
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (std::uint64_t i = 0; i < len; ++i) s.push_back(static_cast<char>(r.read_u8()));
  return s;
}

// --- plan spec ------------------------------------------------------------

namespace {

void encode_params(const bfv::BfvParams& p, ByteWriter& w) {
  w.write_u64(p.n);
  w.write_u64(p.t);
  w.write_u64(p.q);
  w.write_u64(static_cast<bfv::u64>(p.error_sigma * 1000.0));
}

bfv::BfvParams decode_params_body(ByteReader& r) {
  bfv::BfvParams p;
  const bfv::u64 n = r.read_u64();
  if (n < 8 || n > bfv::kMaxPolyDegree) throw WireError("plan spec: ring degree out of range");
  p.n = static_cast<std::size_t>(n);
  p.t = r.read_u64();
  p.q = r.read_u64();
  if (p.t == 0 || p.t > (bfv::u64{1} << 62) || p.q == 0) {
    throw WireError("plan spec: modulus out of range");
  }
  p.error_sigma = static_cast<double>(r.read_u64()) / 1000.0;
  try {
    p.validate();
  } catch (const std::exception& e) {
    throw WireError(std::string("plan spec params: ") + e.what());
  }
  return p;
}

void encode_approx(const std::optional<fft::FxpFftConfig>& cfg, ByteWriter& w) {
  w.write_u8(cfg.has_value() ? 1 : 0);
  if (!cfg.has_value()) return;
  w.write_i64(cfg->input_frac_bits);
  w.write_i64(cfg->data_width);
  w.write_i64(cfg->twiddle_k);
  w.write_i64(cfg->twiddle_min_exp);
  w.write_u8(static_cast<std::uint8_t>(cfg->rounding));
  w.write_u64(cfg->stage_frac_bits.size());
  for (int b : cfg->stage_frac_bits) w.write_i64(b);
}

std::optional<fft::FxpFftConfig> decode_approx(ByteReader& r) {
  const std::uint8_t present = r.read_u8();
  if (present == 0) return std::nullopt;
  if (present != 1) throw WireError("plan spec: bad approx-config presence flag");
  fft::FxpFftConfig cfg;
  const auto bounded = [&](const char* what, bfv::i64 lo, bfv::i64 hi) {
    const bfv::i64 v = r.read_i64();
    if (v < lo || v > hi) throw WireError(std::string("plan spec approx: ") + what);
    return static_cast<int>(v);
  };
  cfg.input_frac_bits = bounded("input_frac_bits out of range", 0, 63);
  cfg.data_width = bounded("data_width out of range", 1, 64);
  cfg.twiddle_k = bounded("twiddle_k out of range", 1, 64);
  cfg.twiddle_min_exp = bounded("twiddle_min_exp out of range", -64, 0);
  const std::uint8_t rounding = r.read_u8();
  if (rounding > static_cast<std::uint8_t>(fft::RoundingMode::kRoundToNearest)) {
    throw WireError("plan spec approx: bad rounding mode");
  }
  cfg.rounding = static_cast<fft::RoundingMode>(rounding);
  const std::uint64_t stages = read_count(r, 64, 8, "plan spec approx stages");
  cfg.stage_frac_bits.clear();
  for (std::uint64_t i = 0; i < stages; ++i) {
    cfg.stage_frac_bits.push_back(bounded("stage_frac_bits out of range", 0, 63));
  }
  return cfg;
}

}  // namespace

void encode(const PlanSpecWire& spec, ByteWriter& w) {
  encode_params(spec.params, w);
  w.write_u8(static_cast<std::uint8_t>(spec.backend));
  encode_approx(spec.approx_config, w);
  w.write_u64(spec.protocol_seed);
  w.write_u64(spec.stride);
  w.write_u64(spec.pad);
  w.write_u64(spec.in_h);
  w.write_u64(spec.in_w);
  encode(spec.weights, w);
}

PlanSpecWire decode_plan_spec(ByteReader& r) {
  PlanSpecWire spec;
  spec.params = decode_params_body(r);
  const std::uint8_t backend = r.read_u8();
  if (backend > static_cast<std::uint8_t>(bfv::PolyMulBackend::kPow2)) {
    throw WireError("plan spec: unknown backend");
  }
  spec.backend = static_cast<bfv::PolyMulBackend>(backend);
  spec.approx_config = decode_approx(r);
  spec.protocol_seed = r.read_u64();
  const std::uint64_t stride = r.read_u64();
  const std::uint64_t pad = r.read_u64();
  const std::uint64_t in_h = r.read_u64();
  const std::uint64_t in_w = r.read_u64();
  if (stride == 0 || stride > kMaxTensorDim || pad > kMaxTensorDim || in_h == 0 ||
      in_w == 0 || in_h > kMaxTensorDim || in_w > kMaxTensorDim) {
    throw WireError("plan spec: geometry out of range");
  }
  spec.stride = static_cast<std::size_t>(stride);
  spec.pad = static_cast<std::size_t>(pad);
  spec.in_h = static_cast<std::size_t>(in_h);
  spec.in_w = static_cast<std::size_t>(in_w);
  spec.weights = decode_tensor4(r);
  return spec;
}

// --- control/data bodies --------------------------------------------------

void encode(const RegisterPlanAck& ack, ByteWriter& w) {
  w.write_u64(ack.plan_id);
  w.write_u8(static_cast<std::uint8_t>(ack.verdict));
  encode(ack.detail, w);
}

RegisterPlanAck decode_register_plan_ack(ByteReader& r) {
  RegisterPlanAck ack;
  ack.plan_id = r.read_u64();
  const std::uint8_t verdict = r.read_u8();
  if (verdict > static_cast<std::uint8_t>(PlanVerdict::kRejected)) {
    throw WireError("register ack: unknown verdict");
  }
  ack.verdict = static_cast<PlanVerdict>(verdict);
  ack.detail = decode_string(r);
  return ack;
}

void encode(const SubmitBody& body, ByteWriter& w) {
  w.write_u64(body.plan_id);
  w.write_u64(body.stream);
  encode(body.x, w);
}

SubmitBody decode_submit(ByteReader& r) {
  SubmitBody body;
  body.plan_id = r.read_u64();
  body.stream = r.read_u64();
  body.x = decode_tensor3(r);
  return body;
}

void encode(const ResultBody& body, ByteWriter& w) {
  w.write_u8(body.ok ? 1 : 0);
  if (!body.ok) {
    encode(body.error, w);
    return;
  }
  encode(body.result.client_share, w);
  encode(body.result.server_share, w);
  w.write_u64(body.result.bytes_client_to_server);
  w.write_u64(body.result.bytes_server_to_client);
  w.write_u64(body.result.hconv_calls);
}

ResultBody decode_result(ByteReader& r) {
  ResultBody body;
  const std::uint8_t ok = r.read_u8();
  if (ok > 1) throw WireError("result: bad ok flag");
  body.ok = ok == 1;
  if (!body.ok) {
    body.error = decode_string(r);
    return body;
  }
  body.result.client_share = decode_tensor3(r);
  body.result.server_share = decode_tensor3(r);
  body.result.bytes_client_to_server = r.read_u64();
  body.result.bytes_server_to_client = r.read_u64();
  body.result.hconv_calls = static_cast<std::size_t>(r.read_u64());
  return body;
}

void encode(const HelloBody& body, ByteWriter& w) {
  w.write_u64(body.shard_index);
  w.write_u64(body.pid);
}

HelloBody decode_hello(ByteReader& r) {
  HelloBody body;
  body.shard_index = r.read_u64();
  body.pid = r.read_u64();
  return body;
}

std::uint64_t fnv1a(const Bytes& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace flash::wire
