// Length-prefixed, versioned binary wire format for the sharded serving
// layer (ARCHITECTURE.md §13).
//
// Frame layout, little-endian throughout (the bfv/serialization primitives):
//
//   [magic u64 "FLASHWIR"][payload_len u64] [payload...]
//   payload = [version u8][type u8][seq u64][body...]
//
// The 16-byte header is fixed-size so a reader can validate magic and
// payload_len — against kMaxFrameBytes AND, for in-memory decodes, against
// the bytes actually present — before allocating a single byte for the
// payload. A forged multi-gigabyte length field is rejected at header-parse
// time; it never reaches an allocator (same hardening contract as the
// bfv/serialization loaders this format is built on).
//
// `seq` is the router-assigned request/control sequence number: responses
// echo the seq of the frame they answer, which is what makes retries after a
// worker kill idempotent (a late duplicate response finds no pending entry
// with its seq and is dropped).
//
// Body codecs: every variable-length field (tensor dims, string lengths,
// stage counts) is capped both by a hard constant and by the remaining
// buffer before any resize. All decode failures raise wire::WireError, a
// bfv::SerializationError subtype.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "bfv/params.hpp"
#include "bfv/serialization.hpp"
#include "fft/fxp_fft.hpp"
#include "protocol/conv_runner.hpp"
#include "tensor/tensor.hpp"

namespace flash::wire {

using bfv::ByteReader;
using bfv::Bytes;
using bfv::ByteWriter;

/// Typed failure for every frame/body decode.
class WireError : public bfv::SerializationError {
 public:
  explicit WireError(const std::string& what) : bfv::SerializationError(what) {}
};

inline constexpr std::uint64_t kFrameMagic = 0x464C415348574952ULL;  // "FLASHWIR"
inline constexpr std::uint8_t kWireVersion = 1;
/// Fixed bytes before the payload: magic + payload_len.
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Fixed payload prefix: version + type + seq.
inline constexpr std::size_t kPayloadPrefixBytes = 10;
/// Hard ceiling on one frame's payload (64 MiB — a full-size ciphertext
/// tensor batch fits with a wide margin). Checked before allocation.
inline constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 26;

enum class MsgType : std::uint8_t {
  kHello = 1,             // router -> worker: shard index
  kHelloAck = 2,          // worker -> router: shard index + pid
  kRegisterPlan = 3,      // router -> worker: PlanSpecWire (warm-up handshake)
  kRegisterPlanAck = 4,   // worker -> router: local plan id + certify verdict
  kSubmit = 5,            // router -> worker: plan id + stream + activation
  kResult = 6,            // worker -> router: ConvRunnerResult or error
  kMetricsQuery = 7,      // router -> worker
  kMetricsReport = 8,     // worker -> router: metrics_json() string
  kShutdown = 9,          // router -> worker: clean exit request
  kShutdownAck = 10,      // worker -> router, sent just before _exit
};
const char* to_string(MsgType t);

struct Frame {
  MsgType type = MsgType::kHello;
  std::uint64_t seq = 0;
  Bytes body;
};

/// Serialize header + payload into one buffer.
Bytes encode_frame(const Frame& frame);

/// Validate a 16-byte frame header and return the payload length. Throws
/// WireError on bad magic or a length outside [kPayloadPrefixBytes,
/// max_frame_bytes] — the caller has not allocated anything yet.
std::uint64_t decode_frame_header(const std::uint8_t* header, std::size_t header_len,
                                  std::uint64_t max_frame_bytes = kMaxFrameBytes);

/// Decode a payload buffer (version/type/seq prefix + body).
Frame decode_payload(const Bytes& payload);

/// Decode one complete frame from a contiguous buffer (header included).
/// Trailing bytes after the framed length are rejected.
Frame decode_frame(const Bytes& buffer, std::uint64_t max_frame_bytes = kMaxFrameBytes);

// --- body codecs ---------------------------------------------------------

void encode(const tensor::Tensor3& t, ByteWriter& w);
tensor::Tensor3 decode_tensor3(ByteReader& r);

void encode(const tensor::Tensor4& t, ByteWriter& w);
tensor::Tensor4 decode_tensor4(ByteReader& r);

void encode(const std::string& s, ByteWriter& w);
std::string decode_string(ByteReader& r);

/// Per-dimension and total-element caps for tensors on the wire. The element
/// cap is sized so that the *largest legal body* — a kResult carrying two
/// max-size tensors — still encodes under kMaxFrameBytes: a tensor a decoder
/// accepts is always a tensor the peer's header gate would have let through.
inline constexpr std::uint64_t kMaxTensorDim = std::uint64_t{1} << 12;
inline constexpr std::uint64_t kMaxTensorElems = std::uint64_t{1} << 21;
inline constexpr std::uint64_t kMaxStringBytes = std::uint64_t{1} << 20;

/// Encoded size of one tensor: three (Tensor3) or four (Tensor4) u64 dims
/// plus 8 bytes per element.
inline constexpr std::uint64_t kTensorWireOverhead = 4 * 8;

/// Total wire bytes (header + payload prefix + body) for a body of the given
/// size — what a sender must compare against its channel's frame cap before
/// writing, so an over-size request fails at submission instead of killing
/// the channel at the peer's header gate.
inline constexpr std::uint64_t frame_bytes_for_body(std::uint64_t body_bytes) {
  return kFrameHeaderBytes + kPayloadPrefixBytes + body_bytes;
}

static_assert(frame_bytes_for_body(1 + 2 * (kTensorWireOverhead + 8 * kMaxTensorElems) + 3 * 8) <=
                  kMaxFrameBytes,
              "a kResult with two max-size tensors must fit in one frame");

/// Value-form plan spec: the wire image of serve::PlanSpec. Carries the BFV
/// parameters themselves (not a context pointer) — each shard builds and
/// owns its context, the shared-nothing part of the design. Field-for-field
/// this covers serve's plan content key, so registering the same wire spec
/// on any shard yields the same plan identity.
struct PlanSpecWire {
  bfv::BfvParams params;
  bfv::PolyMulBackend backend = bfv::PolyMulBackend::kNtt;
  std::optional<fft::FxpFftConfig> approx_config;
  std::uint64_t protocol_seed = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;
  std::size_t in_h = 0, in_w = 0;
  tensor::Tensor4 weights{1, 1, 1, 1};
};
void encode(const PlanSpecWire& spec, ByteWriter& w);
PlanSpecWire decode_plan_spec(ByteReader& r);

/// Worker's answer to kRegisterPlan: its local plan id plus what the
/// CertifyPolicy concluded. kRejected means the worker refused the plan
/// (kEnforce policy, unproven certificate); detail carries the reason.
enum class PlanVerdict : std::uint8_t {
  kUncertified = 0,  // CertifyPolicy::kOff — no certificate computed
  kProven = 1,
  kUnproven = 2,  // registered anyway (kWarn)
  kRejected = 3,  // not registered (kEnforce)
};
const char* to_string(PlanVerdict v);

struct RegisterPlanAck {
  std::uint64_t plan_id = 0;  // meaningless when verdict == kRejected
  PlanVerdict verdict = PlanVerdict::kUncertified;
  std::string detail;
};
void encode(const RegisterPlanAck& ack, ByteWriter& w);
RegisterPlanAck decode_register_plan_ack(ByteReader& r);

struct SubmitBody {
  std::uint64_t plan_id = 0;  // worker-local plan id
  std::uint64_t stream = 0;   // determinism key (ConvRunner base = stream << 32)
  tensor::Tensor3 x{1, 1, 1};
};
void encode(const SubmitBody& body, ByteWriter& w);
SubmitBody decode_submit(ByteReader& r);

struct ResultBody {
  bool ok = false;
  std::string error;                   // set iff !ok
  protocol::ConvRunnerResult result;   // valid iff ok
};
void encode(const ResultBody& body, ByteWriter& w);
ResultBody decode_result(ByteReader& r);

struct HelloBody {
  std::uint64_t shard_index = 0;
  std::uint64_t pid = 0;  // 0 in the router's kHello; the worker's ack fills it
};
void encode(const HelloBody& body, ByteWriter& w);
HelloBody decode_hello(ByteReader& r);

/// FNV-1a over raw bytes — the shard-routing hash (plan key bytes -> shard).
std::uint64_t fnv1a(const Bytes& bytes);

}  // namespace flash::wire
