// Blocking framed I/O over a connected stream socket (the router/worker
// Unix socketpair transport).
//
// A FrameChannel owns its fd. Reads parse the 16-byte header first and
// validate the length against the channel's frame cap before sizing the
// payload buffer — the wire_format allocation-hardening contract applied at
// the I/O boundary. Peer disappearance (EOF, ECONNRESET, EPIPE) is a normal
// event in the chaos/kill-restart regime, so it surfaces as a value (nullopt
// from read_frame, false from write_frame), while malformed bytes — which
// mean a protocol bug or a hostile peer — throw WireError.
//
// Thread contract: at most one reader thread and at most one writer thread
// at a time (the shard router funnels every write through a per-worker
// writer thread so no lock is ever held across a blocking write). A
// concurrent read and write on the same socket are safe.
#pragma once

#include <optional>

#include "wire/wire_format.hpp"

namespace flash::wire {

class FrameChannel {
 public:
  /// Takes ownership of `fd` (closed on destruction).
  explicit FrameChannel(int fd, std::uint64_t max_frame_bytes = kMaxFrameBytes);
  ~FrameChannel();

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  /// Blocking write of one frame. Returns false iff the peer is gone
  /// (EPIPE/ECONNRESET — never raises SIGPIPE); throws WireError on any
  /// other I/O failure.
  bool write_frame(const Frame& frame);

  /// Blocking read of one frame. Returns nullopt on EOF or connection reset
  /// (dead peer); throws WireError on malformed or oversized frames.
  std::optional<Frame> read_frame();

  /// True iff at least one byte is readable without blocking (poll with the
  /// given timeout; 0 = pure poll). The worker uses this to drain pending
  /// submits into one batch before dispatching.
  bool readable(int timeout_ms = 0) const;

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::uint64_t max_frame_bytes_;
};

}  // namespace flash::wire
