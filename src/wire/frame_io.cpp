#include "wire/frame_io.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace flash::wire {

namespace {

/// Full write with MSG_NOSIGNAL (a dying worker must not SIGPIPE the
/// router). Returns false on EPIPE/ECONNRESET, throws on other errors.
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw WireError(std::string("frame write: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Full read. Returns bytes read: `len` on success, 0 on clean EOF at a
/// frame boundary (off == 0), throws WireError on a mid-frame EOF when
/// `mid_frame` (truncation is malformed, not a clean close) — except that a
/// reset from a killed peer is reported as EOF either way.
std::size_t read_all(int fd, std::uint8_t* data, std::size_t len, bool mid_frame) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return 0;  // killed peer: EOF-equivalent
      throw WireError(std::string("frame read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0 && !mid_frame) return 0;  // clean EOF between frames
      throw WireError("frame read: truncated frame (EOF mid-frame)");
    }
    off += static_cast<std::size_t>(n);
  }
  return off;
}

}  // namespace

FrameChannel::FrameChannel(int fd, std::uint64_t max_frame_bytes)
    : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

FrameChannel::~FrameChannel() {
  if (fd_ >= 0) ::close(fd_);
}

bool FrameChannel::write_frame(const Frame& frame) {
  const Bytes buffer = encode_frame(frame);
  return write_all(fd_, buffer.data(), buffer.size());
}

std::optional<Frame> FrameChannel::read_frame() {
  std::uint8_t header[kFrameHeaderBytes];
  if (read_all(fd_, header, sizeof header, /*mid_frame=*/false) == 0) return std::nullopt;
  // Length gate before the payload allocation (see wire_format.hpp).
  const std::uint64_t payload_len = decode_frame_header(header, sizeof header, max_frame_bytes_);
  Bytes payload(static_cast<std::size_t>(payload_len));
  if (read_all(fd_, payload.data(), payload.size(), /*mid_frame=*/true) == 0) return std::nullopt;
  return decode_payload(payload);
}

bool FrameChannel::readable(int timeout_ms) const {
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }
}

}  // namespace flash::wire
