// Analytic tiling model: how a whole CNN layer maps onto polynomials.
//
// Large layers do not fit one polynomial, so Cheetah tiles them:
//   * strided convolutions are decomposed into up to s^2 stride-1
//     sub-convolutions over phase-subsampled inputs (kernel ceil(k/s));
//   * the (padded) spatial extent is split into overlapping tiles whose
//     input patch fits the degree-N polynomial;
//   * input channels are grouped into the largest count that fits.
//
// From the decomposition we derive the exact operation inventory of the
// layer's HConv — how many weight transforms, activation transforms, inverse
// transforms and pointwise multiplications are needed — which drives the
// Fig. 1 profile, the Fig. 11 ablations, and Table III/IV models. The key
// amortizations (paper §III-B): activation transforms are shared across all
// output channels, and weight transforms are shared across all spatial tiles.
#pragma once

#include <cstdint>

#include "encoding/encoder.hpp"
#include "tensor/resnet.hpp"

namespace flash::encoding {

struct LayerTiling {
  std::size_t n = 0;

  // Stride decomposition.
  std::size_t sub_convs = 1;   // number of nonempty phase sub-convolutions
  std::size_t sub_k = 0;       // sub-convolution kernel size
  std::size_t sub_h = 0;       // sub-sampled (padded) input spatial dims
  std::size_t sub_w = 0;

  // Per-sub-conv tiling. Patch sides are rounded up to powers of two (zero
  // padded): the paper's "skipping" optimization depends on valid data
  // landing at power-of-two strides, and the hardware dataflow is configured
  // per layer, so the encoder trades a little polynomial capacity for far
  // cheaper weight transforms.
  std::size_t tile_out = 0;       // spatial tile side (output elements)
  std::size_t patch_h = 0;        // encoded input patch dims (powers of two)
  std::size_t patch_w = 0;
  std::size_t spatial_tiles = 0;  // tiles per sub-conv
  std::size_t channels_per_poly = 0;
  std::size_t channel_tiles = 0;

  // Polynomial inventory for the full layer.
  std::uint64_t input_polys = 0;   // ciphertexts sent by the client
  std::uint64_t weight_polys = 0;  // distinct encoded weight polynomials
  std::uint64_t output_polys = 0;  // result ciphertexts

  // Transform/operation inventory (a ciphertext has 2 ring elements).
  std::uint64_t weight_transforms = 0;
  std::uint64_t cipher_transforms = 0;   // forward, on ciphertext elements
  std::uint64_t inverse_transforms = 0;  // on ciphertext elements
  std::uint64_t pointwise_polys = 0;     // ct-element x weight spectral products

  /// Nonzeros in each encoded weight polynomial.
  std::size_t weight_nnz = 0;
  /// Fraction of dense FFT multiplications the sparse (skip+merge) dataflow
  /// executes for this layer's encoded weight pattern (merged accounting).
  double weight_mult_fraction = 1.0;
  double weight_sparsity() const {
    return 1.0 - static_cast<double>(weight_nnz) / static_cast<double>(n);
  }

  std::uint64_t total_transforms() const {
    return weight_transforms + cipher_transforms + inverse_transforms;
  }
};

/// Plan a layer for polynomial degree n: evaluates every power-of-two patch
/// size, measures the sparse-dataflow multiplication fraction of the
/// resulting weight pattern, and picks the candidate with the lowest
/// estimated accelerator cost (weight array + FP array + point-wise array,
/// weighted by the FLASH unit ratios). Throws only if no patch fits at all.
LayerTiling plan_layer(const tensor::LayerConfig& layer, std::size_t n);

/// Merged-accounting multiplication fraction of the structural weight
/// pattern of a geometry, folded onto the n/2-point FFT.
double sparse_weight_fraction(const ConvGeometry& geometry);

/// Convenience: total transform counts over a list of layers.
struct NetworkTransformCounts {
  std::uint64_t weight_transforms = 0;
  std::uint64_t cipher_transforms = 0;
  std::uint64_t inverse_transforms = 0;
  std::uint64_t pointwise_polys = 0;
};
NetworkTransformCounts plan_network(const std::vector<tensor::LayerConfig>& layers, std::size_t n);

/// Protocol communication for a network's HConvs: ciphertexts up (input
/// polynomials) and down (output polynomials), at the given bytes per
/// ciphertext. The one-round hybrid protocol sends nothing else for the
/// linear layers.
struct NetworkCommunication {
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::uint64_t total() const { return bytes_up + bytes_down; }
};
NetworkCommunication plan_communication(const std::vector<tensor::LayerConfig>& layers,
                                        std::size_t n, std::uint64_t ciphertext_bytes);

}  // namespace flash::encoding
