#include "encoding/encoder.hpp"

#include <stdexcept>

#include "fft/negacyclic.hpp"

namespace flash::encoding {

std::size_t ConvGeometry::channels_per_poly() const {
  if (n < h * w + slack()) return 0;
  const std::size_t cap = (n - slack()) / (h * w);
  return cap < c ? cap : c;
}

std::size_t ConvGeometry::channel_tiles() const {
  const std::size_t cpp = channels_per_poly();
  if (cpp == 0) return 0;
  return (c + cpp - 1) / cpp;
}

ConvEncoder::ConvEncoder(std::size_t n, std::size_t c, std::size_t h, std::size_t w, std::size_t k)
    : ConvEncoder(n, c, h, w, k, k) {}

ConvEncoder::ConvEncoder(std::size_t n, std::size_t c, std::size_t h, std::size_t w, std::size_t kh,
                         std::size_t kw) {
  geo_ = {n, c, h, w, kh, kw};
  if (kh == 0 || kw == 0 || kh > h || kw > w) {
    throw std::invalid_argument("ConvEncoder: kernel larger than input");
  }
  if (geo_.channels_per_poly() == 0) {
    throw std::invalid_argument("ConvEncoder: spatial patch too large for polynomial degree");
  }
}

std::vector<i64> ConvEncoder::encode_activation(const tensor::Tensor3& x, std::size_t tile) const {
  if (x.channels() != geo_.c || x.height() != geo_.h || x.width() != geo_.w) {
    throw std::invalid_argument("encode_activation: tensor shape mismatch");
  }
  const std::size_t cpp = geo_.channels_per_poly();
  if (tile >= geo_.channel_tiles()) throw std::out_of_range("encode_activation: tile out of range");
  std::vector<i64> poly(geo_.n, 0);
  const std::size_t c0 = tile * cpp;
  for (std::size_t c = c0; c < c0 + cpp && c < geo_.c; ++c) {
    const std::size_t local = c - c0;
    for (std::size_t i = 0; i < geo_.h; ++i) {
      for (std::size_t j = 0; j < geo_.w; ++j) {
        poly[local * geo_.h * geo_.w + i * geo_.w + j] = x.at(c, i, j);
      }
    }
  }
  return poly;
}

std::vector<i64> ConvEncoder::encode_weight(const tensor::Tensor4& weights, std::size_t m,
                                            std::size_t tile) const {
  if (weights.in_channels() != geo_.c || weights.kernel_h() != geo_.kh() ||
      weights.kernel_w() != geo_.kw()) {
    throw std::invalid_argument("encode_weight: tensor shape mismatch");
  }
  if (m >= weights.out_channels()) throw std::out_of_range("encode_weight: output channel");
  const std::size_t cpp = geo_.channels_per_poly();
  if (tile >= geo_.channel_tiles()) throw std::out_of_range("encode_weight: tile out of range");
  std::vector<i64> poly(geo_.n, 0);
  const std::size_t c0 = tile * cpp;
  for (std::size_t c = c0; c < c0 + cpp && c < geo_.c; ++c) {
    const std::size_t local = c - c0;
    for (std::size_t i = 0; i < geo_.kh(); ++i) {
      for (std::size_t j = 0; j < geo_.kw(); ++j) {
        poly[(cpp - 1 - local) * geo_.h * geo_.w + (geo_.kh() - 1 - i) * geo_.w +
             (geo_.kw() - 1 - j)] = weights.at(m, c, i, j);
      }
    }
  }
  return poly;
}

std::vector<std::size_t> ConvEncoder::output_positions() const {
  const std::size_t cpp = geo_.channels_per_poly();
  const std::size_t base = (cpp - 1) * geo_.h * geo_.w;
  std::vector<std::size_t> pos;
  pos.reserve(geo_.out_h() * geo_.out_w());
  for (std::size_t y = 0; y < geo_.out_h(); ++y) {
    for (std::size_t x = 0; x < geo_.out_w(); ++x) {
      pos.push_back(base + (y + geo_.kh() - 1) * geo_.w + (x + geo_.kw() - 1));
    }
  }
  return pos;
}

std::vector<i64> ConvEncoder::extract_output(const std::vector<i64>& product) const {
  if (product.size() != geo_.n) throw std::invalid_argument("extract_output: size mismatch");
  std::vector<i64> out;
  out.reserve(geo_.out_h() * geo_.out_w());
  for (std::size_t p : output_positions()) out.push_back(product[p]);
  return out;
}

sparsefft::SparsityPattern ConvEncoder::weight_pattern() const {
  const std::size_t cpp = geo_.channels_per_poly();
  std::vector<std::size_t> nz;
  nz.reserve(cpp * geo_.kh() * geo_.kw());
  for (std::size_t local = 0; local < cpp; ++local) {
    for (std::size_t i = 0; i < geo_.kh(); ++i) {
      for (std::size_t j = 0; j < geo_.kw(); ++j) {
        nz.push_back(local * geo_.h * geo_.w + i * geo_.w + j);
      }
    }
  }
  return sparsefft::SparsityPattern(geo_.n, std::move(nz));
}

tensor::Tensor3 conv2d_via_encoding(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                                    std::size_t n) {
  ConvEncoder enc(n, x.channels(), x.height(), x.width(), weights.kernel_h(), weights.kernel_w());
  const auto& geo = enc.geometry();
  tensor::Tensor3 out(weights.out_channels(), geo.out_h(), geo.out_w());
  for (std::size_t m = 0; m < weights.out_channels(); ++m) {
    std::vector<i64> acc(n, 0);
    for (std::size_t tile = 0; tile < geo.channel_tiles(); ++tile) {
      const std::vector<i64> xa = enc.encode_activation(x, tile);
      const std::vector<i64> wa = enc.encode_weight(weights, m, tile);
      const std::vector<i64> prod = fft::negacyclic_multiply_i64(xa, wa);
      for (std::size_t i = 0; i < n; ++i) acc[i] += prod[i];
    }
    const std::vector<i64> vals = enc.extract_output(acc);
    std::size_t idx = 0;
    for (std::size_t y = 0; y < geo.out_h(); ++y) {
      for (std::size_t xx = 0; xx < geo.out_w(); ++xx) out.at(m, y, xx) = vals[idx++];
    }
  }
  return out;
}

}  // namespace flash::encoding
