#include "encoding/matvec.hpp"

#include <stdexcept>

#include "fft/negacyclic.hpp"

namespace flash::encoding {

MatVecEncoder::MatVecEncoder(std::size_t n, std::size_t in_features, std::size_t out_features)
    : n_(n), in_features_(in_features), out_features_(out_features) {
  if (in_features == 0 || in_features > n) {
    throw std::invalid_argument("MatVecEncoder: in_features must be in [1, N]");
  }
  if (out_features == 0) throw std::invalid_argument("MatVecEncoder: out_features must be > 0");
  rows_per_poly_ = n_ / in_features_;
  poly_count_ = (out_features_ + rows_per_poly_ - 1) / rows_per_poly_;
}

std::vector<i64> MatVecEncoder::encode_vector(const std::vector<i64>& x) const {
  if (x.size() != in_features_) throw std::invalid_argument("encode_vector: size mismatch");
  std::vector<i64> poly(n_, 0);
  for (std::size_t i = 0; i < in_features_; ++i) poly[i] = x[i];
  return poly;
}

std::vector<i64> MatVecEncoder::encode_matrix(const std::vector<i64>& w_row_major,
                                              std::size_t chunk) const {
  if (w_row_major.size() != in_features_ * out_features_) {
    throw std::invalid_argument("encode_matrix: size mismatch");
  }
  if (chunk >= poly_count_) throw std::out_of_range("encode_matrix: chunk out of range");
  std::vector<i64> poly(n_, 0);
  const std::size_t row_base = chunk * rows_per_poly_;
  for (std::size_t r = 0; r < rows_per_poly_ && row_base + r < out_features_; ++r) {
    for (std::size_t i = 0; i < in_features_; ++i) {
      poly[r * in_features_ + (in_features_ - 1 - i)] = w_row_major[(row_base + r) * in_features_ + i];
    }
  }
  return poly;
}

std::vector<std::size_t> MatVecEncoder::output_positions(std::size_t chunk) const {
  if (chunk >= poly_count_) throw std::out_of_range("output_positions: chunk out of range");
  std::vector<std::size_t> pos;
  const std::size_t row_base = chunk * rows_per_poly_;
  for (std::size_t r = 0; r < rows_per_poly_ && row_base + r < out_features_; ++r) {
    pos.push_back(r * in_features_ + in_features_ - 1);
  }
  return pos;
}

std::vector<i64> MatVecEncoder::extract(const std::vector<i64>& product, std::size_t chunk) const {
  if (product.size() != n_) throw std::invalid_argument("extract: size mismatch");
  std::vector<i64> out;
  for (std::size_t p : output_positions(chunk)) out.push_back(product[p]);
  return out;
}

std::vector<i64> matvec_via_encoding(const std::vector<i64>& w_row_major,
                                     const std::vector<i64>& x, std::size_t out_features,
                                     std::size_t n) {
  MatVecEncoder enc(n, x.size(), out_features);
  const std::vector<i64> xv = enc.encode_vector(x);
  std::vector<i64> out;
  out.reserve(out_features);
  for (std::size_t chunk = 0; chunk < enc.poly_count(); ++chunk) {
    const std::vector<i64> wv = enc.encode_matrix(w_row_major, chunk);
    const std::vector<i64> prod = fft::negacyclic_multiply_i64(xv, wv);
    const std::vector<i64> vals = enc.extract(prod, chunk);
    out.insert(out.end(), vals.begin(), vals.end());
  }
  out.resize(out_features);
  return out;
}

}  // namespace flash::encoding
