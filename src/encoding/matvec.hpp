// Cheetah coefficient encoding for matrix-vector products (fully-connected
// layers). Table IV's "linear layers" cover both convolutions and the FC
// head; this is the FC counterpart of encoder.hpp.
//
// For W in Z^{m x k} and x in Z^k (k <= N):
//   vector   v[i]                 = x[i]                    i in [0, k)
//   matrix   w[r*k + (k-1-i)]     = W[row_base + r][i]      r rows per poly
// The negacyclic product then carries output row_base+r at coefficient
// r*k + k - 1: cross-row contributions cannot reach those positions (same
// carry argument as the convolution encoding; see tests), so one PolyMul
// evaluates floor(N/k) rows.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace flash::encoding {

using tensor::i64;

class MatVecEncoder {
 public:
  /// n: polynomial degree; in_features = k <= n.
  MatVecEncoder(std::size_t n, std::size_t in_features, std::size_t out_features);

  std::size_t rows_per_poly() const { return rows_per_poly_; }
  std::size_t poly_count() const { return poly_count_; }
  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  /// The input vector, one polynomial (shared by every matrix chunk).
  std::vector<i64> encode_vector(const std::vector<i64>& x) const;

  /// Rows [chunk*rows_per_poly, ...) of the row-major matrix.
  std::vector<i64> encode_matrix(const std::vector<i64>& w_row_major, std::size_t chunk) const;

  /// Positions of the outputs inside a product polynomial.
  std::vector<std::size_t> output_positions(std::size_t chunk) const;

  /// Extract the outputs of one chunk's product.
  std::vector<i64> extract(const std::vector<i64>& product, std::size_t chunk) const;

 private:
  std::size_t n_, in_features_, out_features_, rows_per_poly_, poly_count_;
};

/// Reference: full matvec through the encoding with exact integer negacyclic
/// products (the oracle used by tests and the cleartext path).
std::vector<i64> matvec_via_encoding(const std::vector<i64>& w_row_major,
                                     const std::vector<i64>& x, std::size_t out_features,
                                     std::size_t n);

}  // namespace flash::encoding
