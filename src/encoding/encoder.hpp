// Cheetah-style coefficient encoding for homomorphic convolution (paper
// §II-B, Fig. 2; Huang et al., USENIX Security '22).
//
// Cleartext tensors are placed directly into polynomial coefficients so one
// polynomial multiplication computes a whole stride-1 convolution without
// homomorphic rotations:
//
//   activation  x[c*H*W + i*W + j]                      = X[c, i, j]
//   weight      w[(C'-1-c)*H*W + (k-1-i)*W + (k-1-j)]   = K[m, c, i, j]
//
// The product polynomial then carries the convolution output for channel m at
//   y[(C'-1)*H*W + (y'+k-1)*W + (x'+k-1)] = conv(X, K[m])[y', x'].
//
// Carry analysis (see tests): contributions that overflow a row or channel
// boundary can never land on a target coefficient, and negacyclic wraparound
// stays below the target range provided
//   C'*H*W + (k-1)*W + (k-1) <= N,
// which is what channel tiling enforces. Weight polynomials carry only
// C'*k*k nonzeros out of N — the >90% sparsity FLASH exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "sparsefft/pattern.hpp"
#include "tensor/tensor.hpp"

namespace flash::encoding {

using tensor::i64;

/// Geometry of one channel-tiled stride-1 valid convolution encoding.
/// Kernels may be rectangular (stride phases of square kernels are not
/// square); `k` is the kernel height and `k_w` the width, with k_w = 0
/// meaning "square" so brace-initialization with five fields keeps working.
struct ConvGeometry {
  std::size_t n = 0;  // polynomial degree
  std::size_t c = 0;  // total input channels
  std::size_t h = 0, w = 0;  // input spatial dims (already padded)
  std::size_t k = 0;    // kernel height
  std::size_t k_w = 0;  // kernel width (0 = square)

  std::size_t kh() const { return k; }
  std::size_t kw() const { return k_w ? k_w : k; }
  std::size_t out_h() const { return h - kh() + 1; }
  std::size_t out_w() const { return w - kw() + 1; }
  /// Channels that fit in one polynomial without wraparound contamination.
  std::size_t channels_per_poly() const;
  std::size_t channel_tiles() const;
  /// Coefficient slack needed past the channel payload.
  std::size_t slack() const { return (kh() - 1) * w + (kw() - 1); }
};

class ConvEncoder {
 public:
  /// Throws if even a single channel cannot fit in the polynomial (the caller
  /// must spatially tile first; see tiling.hpp).
  ConvEncoder(std::size_t n, std::size_t c, std::size_t h, std::size_t w, std::size_t k);
  ConvEncoder(std::size_t n, std::size_t c, std::size_t h, std::size_t w, std::size_t kh,
              std::size_t kw);

  const ConvGeometry& geometry() const { return geo_; }

  /// Encode the activation channels of tile `tile` into N coefficients.
  std::vector<i64> encode_activation(const tensor::Tensor3& x, std::size_t tile) const;

  /// Encode the weights of output channel m restricted to channel tile `tile`.
  std::vector<i64> encode_weight(const tensor::Tensor4& weights, std::size_t m, std::size_t tile) const;

  /// Positions in the product polynomial that hold the out_h x out_w
  /// convolution outputs (row-major).
  std::vector<std::size_t> output_positions() const;

  /// Extract the conv output for one output channel from a product
  /// polynomial (already accumulated over channel tiles).
  std::vector<i64> extract_output(const std::vector<i64>& product) const;

  /// The structural sparsity pattern of any encoded weight polynomial for
  /// this geometry (independent of weight values; zero weights only increase
  /// sparsity).
  sparsefft::SparsityPattern weight_pattern() const;

 private:
  ConvGeometry geo_;
};

/// Full cleartext homomorphic-free reference: encode, schoolbook-multiply in
/// Z (negacyclic), accumulate tiles, extract. Used by tests to validate the
/// encoding against direct conv2d, and by examples as the plaintext path.
tensor::Tensor3 conv2d_via_encoding(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                                    std::size_t n);

}  // namespace flash::encoding
