#include "encoding/tiling.hpp"

#include <algorithm>
#include <stdexcept>

#include "sparsefft/planner.hpp"

namespace flash::encoding {

namespace {
std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

double sparse_weight_fraction(const ConvGeometry& geometry) {
  const std::size_t m = geometry.n / 2;
  const std::size_t cpp = geometry.channels_per_poly();
  std::vector<std::size_t> folded;
  folded.reserve(cpp * geometry.k * geometry.k);
  for (std::size_t local = 0; local < cpp; ++local) {
    for (std::size_t i = 0; i < geometry.k; ++i) {
      for (std::size_t j = 0; j < geometry.k; ++j) {
        folded.push_back((local * geometry.h * geometry.w + i * geometry.w + j) % m);
      }
    }
  }
  const sparsefft::SparsityPattern pattern(m, std::move(folded));
  const sparsefft::SparseFftPlan plan(m, pattern);
  const sparsefft::PlanCost dense = sparsefft::SparseFftPlan::dense_cost(m);
  if (dense.merged_mults == 0) return 1.0;
  return static_cast<double>(plan.cost().merged_mults) / static_cast<double>(dense.merged_mults);
}

LayerTiling plan_layer(const tensor::LayerConfig& layer, std::size_t n) {
  LayerTiling t;
  t.n = n;

  const std::size_t s = layer.stride;
  const std::size_t padded_h = layer.in_h + 2 * layer.pad;
  const std::size_t padded_w = layer.in_w + 2 * layer.pad;

  // Stride decomposition into stride-1 sub-convolutions over phase-subsampled
  // inputs. Only min(k, s)^2 phases carry kernel taps.
  const std::size_t phases = std::min(layer.kernel, s);
  t.sub_convs = phases * phases;
  t.sub_k = ceil_div(layer.kernel, s);
  t.sub_h = ceil_div(padded_h, s);
  t.sub_w = ceil_div(padded_w, s);

  const std::size_t out_h = layer.out_h();
  const std::size_t out_w = layer.out_w();

  // Relative per-cycle capacities of the three FLASH arrays (240 approx BUs,
  // 16 FP BUs, 240 FP multipliers) — the proxy for "estimated cycles".
  constexpr double kWeightUnits = 240.0;
  constexpr double kFpUnits = 16.0;
  constexpr double kPwUnits = 240.0;
  const double fft_bflies = static_cast<double>(n / 4) *
                            static_cast<double>([](std::size_t m) {
                              int l = 0;
                              while ((std::size_t{1} << l) < m) ++l;
                              return l;
                            }(n / 2));

  // Candidate patches: power-of-two sides (the sparse dataflow depends on
  // power-of-two strides in the encoded weight pattern).
  const std::size_t needed = next_pow2(std::max(t.sub_h, t.sub_w));
  bool found = false;
  double best_cost = 0.0;
  std::uint64_t best_weight_polys = 0;
  for (std::size_t patch = std::min<std::size_t>(needed, 256); patch >= std::max<std::size_t>(t.sub_k, 2);
       patch /= 2) {
    const ConvGeometry g{n, layer.in_c, patch, patch, t.sub_k};
    if (g.channels_per_poly() == 0) continue;
    const std::size_t tile_out = std::min(patch - t.sub_k + 1, std::max(out_h, out_w));
    const std::size_t spatial = ceil_div(out_h, tile_out) * ceil_div(out_w, tile_out);
    const std::uint64_t weight_polys =
        static_cast<std::uint64_t>(layer.out_c) * t.sub_convs * g.channel_tiles();
    const std::uint64_t input_polys =
        static_cast<std::uint64_t>(t.sub_convs) * spatial * g.channel_tiles();
    const std::uint64_t output_polys = static_cast<std::uint64_t>(layer.out_c) * spatial;
    const std::uint64_t pointwise = 2 * static_cast<std::uint64_t>(layer.out_c) * t.sub_convs *
                                    spatial * g.channel_tiles();
    const double frac = sparse_weight_fraction(g);
    const double cost = static_cast<double>(weight_polys) * fft_bflies * frac / kWeightUnits +
                        static_cast<double>(2 * input_polys + 2 * output_polys) * fft_bflies / kFpUnits +
                        static_cast<double>(pointwise) * static_cast<double>(n / 2) / kPwUnits;
    // Prefer strictly cheaper candidates; on near-ties (the weight array is
    // idle-capacity on ultra-sparse layers) prefer fewer weight polynomials,
    // which also keeps the NTT-baseline mapping sane.
    const bool better =
        !found || cost < best_cost * 0.999 ||
        (cost < best_cost * 1.001 && weight_polys < best_weight_polys);
    if (better) {
      found = true;
      best_cost = cost;
      best_weight_polys = weight_polys;
      t.patch_h = t.patch_w = patch;
      t.tile_out = tile_out;
      t.spatial_tiles = spatial;
      t.channels_per_poly = g.channels_per_poly();
      t.channel_tiles = g.channel_tiles();
      t.weight_mult_fraction = frac;
      t.weight_polys = weight_polys;
      t.input_polys = input_polys;
      t.output_polys = output_polys;
      t.pointwise_polys = pointwise;
    }
    if (patch == 2) break;
  }
  if (!found) {
    throw std::invalid_argument("plan_layer: polynomial degree too small for even a 1x1 tile");
  }
  t.weight_nnz = t.channels_per_poly * t.sub_k * t.sub_k;
  t.weight_transforms = t.weight_polys;
  t.cipher_transforms = 2 * t.input_polys;
  t.inverse_transforms = 2 * t.output_polys;
  return t;
}

NetworkCommunication plan_communication(const std::vector<tensor::LayerConfig>& layers,
                                        std::size_t n, std::uint64_t ciphertext_bytes) {
  NetworkCommunication c;
  for (const auto& layer : layers) {
    const LayerTiling t = plan_layer(layer, n);
    c.bytes_up += t.input_polys * ciphertext_bytes;
    c.bytes_down += t.output_polys * ciphertext_bytes;
  }
  return c;
}

NetworkTransformCounts plan_network(const std::vector<tensor::LayerConfig>& layers, std::size_t n) {
  NetworkTransformCounts c;
  for (const auto& layer : layers) {
    const LayerTiling t = plan_layer(layer, n);
    c.weight_transforms += t.weight_transforms;
    c.cipher_transforms += t.cipher_transforms;
    c.inverse_transforms += t.inverse_transforms;
    c.pointwise_polys += t.pointwise_polys;
  }
  return c;
}

}  // namespace flash::encoding
