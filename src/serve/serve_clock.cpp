#include "serve/serve_clock.hpp"

#include <atomic>

namespace flash::serve {

namespace {
/// Test-injected offset in nanoseconds. Monotonic non-decreasing except for
/// reset_clock(), which callers only invoke around quiesced servers.
std::atomic<std::int64_t> g_clock_offset_ns{0};
}  // namespace

Clock::time_point now() {
  return Clock::now() +
         std::chrono::nanoseconds(g_clock_offset_ns.load(std::memory_order_relaxed));
}

namespace testing_hooks {

void advance_clock(std::chrono::nanoseconds delta) {
  if (delta.count() <= 0) return;
  g_clock_offset_ns.fetch_add(delta.count(), std::memory_order_relaxed);
}

void reset_clock() { g_clock_offset_ns.store(0, std::memory_order_relaxed); }

}  // namespace testing_hooks

}  // namespace flash::serve
