// Plan-keyed batching front-end for the one-round HConv protocol
// (ARCHITECTURE.md §9).
//
// A serving process sees many concurrent inference sessions hitting a small
// set of layers. The expensive, input-independent part of an HConv — the
// weight transforms, ~70% of a request under the approximate-FFT datapath —
// is a pure function of the *plan* (layer shape + weights + design point),
// so the server:
//
//   * registers each distinct plan once (deduplicated by a content key) and
//     precomputes its ConvPlan (phase kernels + per-tile weight spectra);
//   * admits requests into one bounded FIFO queue (reject-with-retry-after
//     once full — backpressure, never unbounded memory);
//   * dispatches requests plan-by-plan: a dispatcher drains up to max_batch
//     same-plan requests in one batch, so consecutive requests share the
//     cached spectra and the warmed transform-table cache;
//   * completes a future per request, with per-request deadlines (checked at
//     admission and at batch pickup) and client-side cancellation that wins
//     or loses a claim race exactly once.
//
// Determinism contract: a request executed with stream index s is
// bit-identical to a bare `ConvRunner::run(x, w, stride, pad, s << 32)` on a
// protocol with the plan's seed — batching, queueing order, thread count and
// cancellations of *other* requests never change a request's bytes. The
// extended HConvOracle (testing/oracle.hpp) enforces exactly this.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <optional>
#include <thread>

#include "core/thread_annotations.hpp"
#include "protocol/conv_runner.hpp"
#include "protocol/plan_certificate.hpp"
#include "serve/metrics.hpp"
#include "serve/serve_clock.hpp"

namespace flash::serve {

using PlanId = std::size_t;

/// Hard floor on every retry_after_s backpressure hint. A rejected client
/// told to "retry in 0s" retries immediately — a thundering herd exactly
/// when the server is coldest (no batch timed yet) or slowest, so even a
/// misconfigured default_retry_after_s <= 0 never reaches the client as 0.
inline constexpr double kMinRetryAfterS = 1e-3;

/// Batch-time EWMA with 3/4 decay, kept in Q8 fixed point. The plain
/// integer update (3*prev + sample)/4 truncates toward zero every step: it
/// can never settle on values not divisible by 4 (fixpoints sit at up to
/// sample-1 from below) and systematically under-reports. In Q8 the sticky
/// fixpoints are within 2/256 ns of the target and the rounding readout
/// maps them exactly onto it, so the estimate converges bit-exactly from
/// above and from below (pinned in test_serve).
namespace ewma {
inline constexpr int kFracBits = 8;

/// One filter step. prev_q8 == 0 means "no sample yet": the first sample
/// seeds the filter directly. Samples are clamped to >= 1 ns so a genuine
/// 0 ns batch cannot masquerade as the unset sentinel.
constexpr std::uint64_t update_q8(std::uint64_t prev_q8, std::uint64_t sample_ns) {
  const std::uint64_t sample_q8 = (sample_ns == 0 ? 1 : sample_ns) << kFracBits;
  return prev_q8 == 0 ? sample_q8 : (3 * prev_q8 + sample_q8 + 2) >> 2;
}

/// Round-to-nearest nanosecond readout; 0 iff no sample was ever recorded.
constexpr std::uint64_t ewma_ns(std::uint64_t q8) {
  return (q8 + (std::uint64_t{1} << (kFracBits - 1))) >> kFracBits;
}
}  // namespace ewma

/// One servable layer: everything but the activation.
struct PlanSpec {
  /// Non-owning; must outlive the server (contexts are heavy and callers
  /// routinely share one across plans).
  const bfv::BfvContext* ctx = nullptr;
  bfv::PolyMulBackend backend = bfv::PolyMulBackend::kNtt;
  std::optional<fft::FxpFftConfig> approx_config;
  std::uint64_t protocol_seed = 0;
  tensor::Tensor4 weights{1, 1, 1, 1};
  std::size_t stride = 1;
  std::size_t pad = 0;
  std::size_t in_h = 0, in_w = 0;  // expected activation spatial shape (pre-pad)
};

enum class RequestState {
  kQueued,
  kRunning,
  kDone,
  kRejected,          // backpressure or draining; retry_after_s() says when to retry
  kCancelled,
  kDeadlineExceeded,
  kFailed,            // the protocol threw; error() carries the message
};

const char* to_string(RequestState s);

struct SubmitOptions {
  /// Absolute deadline; alternatively set `timeout` (relative, wins if both).
  std::optional<Clock::time_point> deadline;
  std::optional<std::chrono::nanoseconds> timeout;
  /// Request stream index (determinism key). Defaults to a per-plan counter
  /// (admission order). The ConvRunner stream base is `stream << 32`.
  std::optional<std::uint64_t> stream;
};

/// Handle to one submitted request. Copyable; all copies share one state.
/// Safe to wait on / cancel from any thread, including after the server is
/// gone (by then every request is terminal).
class ConvFuture {
 public:
  ConvFuture() = default;

  void wait() const;
  bool wait_for(std::chrono::nanoseconds d) const;
  bool done() const;  // terminal state reached
  RequestState state() const;

  /// Valid iff state() == kDone (std::logic_error otherwise).
  const protocol::ConvRunnerResult& result() const;
  std::string error() const;
  /// Backpressure hint, valid iff state() == kRejected.
  double retry_after_s() const;
  /// The stream index this request was assigned (for serial reproduction).
  std::uint64_t stream() const;

  /// Cancel if still queued. True iff this call won the race against batch
  /// pickup; false means the request already ran (or finished, or was never
  /// admitted) and its result stands.
  bool cancel();

  /// Register a completion callback, invoked exactly once when the request
  /// reaches a terminal state — immediately on the calling thread if it
  /// already has. The callback always runs with no server or request locks
  /// held, so it may submit follow-up requests to the same server: the
  /// network session layer chains layer k+1 on layer k's completion this
  /// way. At most one callback per request; registering again replaces an
  /// unfired callback.
  void on_terminal(std::function<void()> fn);

 private:
  friend class ConvServer;
  struct Shared;
  explicit ConvFuture(std::shared_ptr<Shared> shared) : shared_(std::move(shared)) {}
  std::shared_ptr<Shared> shared_;
};

/// What register_plan does with the end-to-end decryption-correctness
/// certificate (protocol/plan_certificate.hpp) it computes for each new plan.
///   kOff     — don't certify (certificate accessor returns nullopt).
///   kWarn    — certify, register regardless, count unproven plans in
///              plans_certified_unproven and flag them in metrics_json().
///   kEnforce — certify, refuse unproven plans: register_plan throws
///              std::invalid_argument carrying the certificate detail and the
///              plan is not registered (plans_rejected_uncertified counts it).
enum class CertifyPolicy { kOff, kWarn, kEnforce };

struct ServerOptions {
  /// Admission queue bound; 0 = reject every submit (a valid, tested
  /// configuration — the "serve nothing, shed everything" circuit breaker).
  std::size_t max_queue = 64;
  /// Max same-plan requests per batch dispatch.
  std::size_t max_batch = 8;
  /// Dispatcher threads. 0 = manual mode: nothing runs until the caller
  /// invokes dispatch_once() — the deterministic-scheduler unit-test tier.
  std::size_t dispatchers = 1;
  /// Shared compute pool for the protocol's inner loops (non-owning; null =
  /// serial compute inside each dispatcher).
  core::ThreadPool* pool = nullptr;
  /// retry_after_s fallback before the first batch has been timed. Values
  /// <= kMinRetryAfterS are clamped up to it at estimate time (a cold
  /// server must never hint "retry now").
  double default_retry_after_s = 0.05;
  /// Decryption-correctness gate on plan registration (see CertifyPolicy).
  /// Certification runs once per unique plan, outside every server lock,
  /// next to the (much heavier) weight-transform precomputation.
  CertifyPolicy certify = CertifyPolicy::kWarn;
};

class ConvServer {
 public:
  explicit ConvServer(ServerOptions options = {});
  ~ConvServer();  // drains, then stops dispatchers

  ConvServer(const ConvServer&) = delete;
  ConvServer& operator=(const ConvServer&) = delete;

  /// Register (or look up) a plan. Two specs with identical content — same
  /// context parameters, backend, design point, seed, geometry and weight
  /// values — return the same PlanId, so independent sessions serving the
  /// same layer batch together. Prepares the weight spectra eagerly.
  PlanId register_plan(const PlanSpec& spec);

  /// Admit one request. Never blocks; inspect the returned future for
  /// kRejected (+ retry_after_s) under backpressure.
  ConvFuture submit(PlanId plan, tensor::Tensor3 x, SubmitOptions options = {});

  /// Manual mode: dispatch one batch on the calling thread. Returns false
  /// when the queue is empty. Also callable alongside dispatcher threads
  /// (a caller "lending a hand" is the same claim path).
  bool dispatch_once();

  /// Stop admitting (subsequent submits are kRejected with
  /// rejected_draining) and wait until the queue is empty and nothing is
  /// inflight. In manual mode, drains the queue on the calling thread.
  void drain();

  const ServerMetrics& metrics() const { return metrics_; }
  std::string metrics_json() const;

  /// The certificate computed at registration; nullopt for an unknown id or
  /// under CertifyPolicy::kOff.
  std::optional<protocol::PlanCertificate> plan_certificate(PlanId plan) const;

 private:
  struct Plan;

  void dispatcher_loop();
  /// Pre: lock held, queue non-empty. Pops one plan-batch, runs it unlocked,
  /// re-locks before returning.
  void dispatch_batch(std::unique_lock<std::mutex>& lock);
  void run_batch(Plan& plan, std::vector<std::shared_ptr<ConvFuture::Shared>>& batch);
  double retry_after_estimate_s() const;

  ServerOptions options_;
  ServerMetrics metrics_;

  mutable std::mutex plans_mu_;
  std::vector<std::shared_ptr<Plan>> plans_ FLASH_GUARDED_BY(plans_mu_);

  mutable std::mutex mu_;
  std::deque<std::shared_ptr<ConvFuture::Shared>> queue_ FLASH_GUARDED_BY(mu_);
  bool draining_ FLASH_GUARDED_BY(mu_) = false;
  bool stop_ FLASH_GUARDED_BY(mu_) = false;
  std::condition_variable queue_cv_;  // dispatchers: work available / stop
  std::condition_variable drain_cv_;  // drain(): queue empty + idle
  std::atomic<std::uint64_t> batch_ewma_q8_{0};  // ewma::update_q8 state

  std::vector<std::thread> dispatchers_;
};

namespace testing_hooks {
/// Test-only: invoked at the start of every batch execution (after the
/// batch left the queue, before any member is claimed) with (plan id, batch
/// size). Lets tests inject slow workers and pin the cancel-vs-claim race.
/// Install/remove only around a quiesced server. Pass nullptr to remove.
void set_batch_hook(void (*hook)(std::size_t plan, std::size_t batch_size));
}  // namespace testing_hooks

}  // namespace flash::serve
