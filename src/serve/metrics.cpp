#include "serve/metrics.hpp"

#include <cmath>
#include <sstream>

#include "fft/transform_cache.hpp"

namespace flash::serve {

namespace {

/// Index of the highest set bit; 0 for 0.
int log2_floor(std::uint64_t v) {
  int i = 0;
  while (v >>= 1) ++i;
  return i;
}

}  // namespace

void LatencyHistogram::record_ns(std::uint64_t ns) {
  buckets_[static_cast<std::size_t>(log2_floor(ns))].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

double LatencyHistogram::quantile_ns(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double target = p * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= target) {
      return std::ldexp(1.0, static_cast<int>(i) + 1);  // bucket upper bound
    }
  }
  return std::ldexp(1.0, 64);
}

void ServerMetrics::note_batch(std::size_t plan, std::size_t size) {
  std::lock_guard<std::mutex> lock(plans_mu_);
  PlanBatchStats& s = plans_[plan];
  ++s.batches;
  s.requests += size;
  s.max_batch = std::max(s.max_batch, size);
}

std::map<std::size_t, PlanBatchStats> ServerMetrics::plan_batches() const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  return plans_;
}

std::uint64_t ServerMetrics::terminal() const {
  return rejected_queue_full.value() + rejected_draining.value() + completed.value() +
         failed.value() + cancelled.value() + deadline_expired_at_admission.value() +
         deadline_expired_in_queue.value();
}

std::string ServerMetrics::to_json(std::int64_t pool_threads, std::int64_t pool_pending) const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  const std::pair<const char*, const Counter*> counters[] = {
      {"submitted", &submitted},
      {"admitted", &admitted},
      {"rejected_queue_full", &rejected_queue_full},
      {"rejected_draining", &rejected_draining},
      {"completed", &completed},
      {"failed", &failed},
      {"cancelled", &cancelled},
      {"deadline_expired_at_admission", &deadline_expired_at_admission},
      {"deadline_expired_in_queue", &deadline_expired_in_queue},
      {"batches_dispatched", &batches_dispatched},
  };
  for (std::size_t i = 0; i < std::size(counters); ++i) {
    out << (i ? ", " : "") << "\"" << counters[i].first << "\": " << counters[i].second->value();
  }
  out << "},\n  \"gauges\": {\"queue_depth\": " << queue_depth.value()
      << ", \"inflight\": " << inflight.value() << "},\n  \"latency_ns\": {";
  const std::pair<const char*, const LatencyHistogram*> histograms[] = {
      {"queue_wait", &queue_wait}, {"service", &service}, {"end_to_end", &end_to_end}};
  for (std::size_t i = 0; i < std::size(histograms); ++i) {
    const LatencyHistogram& h = *histograms[i].second;
    const double mean =
        h.count() == 0 ? 0.0 : static_cast<double>(h.sum_ns()) / static_cast<double>(h.count());
    out << (i ? ", " : "") << "\"" << histograms[i].first << "\": {\"count\": " << h.count()
        << ", \"p50\": " << h.quantile_ns(0.50) << ", \"p95\": " << h.quantile_ns(0.95)
        << ", \"p99\": " << h.quantile_ns(0.99) << ", \"mean\": " << mean << "}";
  }
  out << "},\n  \"plans\": {";
  {
    const auto plans = plan_batches();
    bool first = true;
    for (const auto& [id, s] : plans) {
      out << (first ? "" : ", ") << "\"" << id << "\": {\"batches\": " << s.batches
          << ", \"requests\": " << s.requests << ", \"max_batch\": " << s.max_batch
          << ", \"mean_batch\": " << s.mean_batch() << "}";
      first = false;
    }
  }
  const fft::TransformCacheStats tc = fft::transform_cache_stats();
  out << "},\n  \"transform_cache\": {\"hits\": " << tc.hits << ", \"misses\": " << tc.misses
      << ", \"ntt_hits\": " << tc.ntt_hits << ", \"ntt_misses\": " << tc.ntt_misses
      << ", \"fft_hits\": " << tc.fft_hits << ", \"fft_misses\": " << tc.fft_misses
      << ", \"fxp_hits\": " << tc.fxp_hits << ", \"fxp_misses\": " << tc.fxp_misses
      << ", \"entries\": " << tc.ntt_entries + tc.fft_entries + tc.fxp_entries
      << "},\n  \"pool\": {\"threads\": " << pool_threads << ", \"pending_jobs\": " << pool_pending
      << "}\n}\n";
  return out.str();
}

double json_number_at(const std::string& json, const std::string& context,
                      const std::string& key) {
  std::size_t from = 0;
  if (!context.empty()) {
    from = json.find(context);
    if (from == std::string::npos) return std::nan("");
  }
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle, from);
  if (at == std::string::npos) return std::nan("");
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

}  // namespace flash::serve
