#include "serve/metrics.hpp"

#include <cmath>
#include <sstream>

#include "fft/transform_cache.hpp"

namespace flash::serve {

namespace {

/// Index of the highest set bit; 0 for 0.
int log2_floor(std::uint64_t v) {
  int i = 0;
  while (v >>= 1) ++i;
  return i;
}

}  // namespace

void LatencyHistogram::record_ns(std::uint64_t ns) {
  buckets_[static_cast<std::size_t>(log2_floor(ns))].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

double LatencyHistogram::quantile_ns(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double target = p * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= target) {
      return std::ldexp(1.0, static_cast<int>(i) + 1);  // bucket upper bound
    }
  }
  return std::ldexp(1.0, 64);
}

void append_histogram_json(std::ostream& out, const LatencyHistogram& h) {
  const std::uint64_t count = h.count();
  if (count == 0) {
    // Empty histogram: all-zero literals. quantile_ns/mean each guard the
    // division individually, but the exporter must not depend on that —
    // a single NaN would corrupt the whole JSON document.
    out << "{\"count\": 0, \"p50\": 0, \"p95\": 0, \"p99\": 0, \"mean\": 0}";
    return;
  }
  const auto finite = [](double v) { return std::isfinite(v) ? v : 0.0; };
  const double mean = static_cast<double>(h.sum_ns()) / static_cast<double>(count);
  out << "{\"count\": " << count << ", \"p50\": " << finite(h.quantile_ns(0.50))
      << ", \"p95\": " << finite(h.quantile_ns(0.95)) << ", \"p99\": " << finite(h.quantile_ns(0.99))
      << ", \"mean\": " << finite(mean) << "}";
}

LatencyHistogram& SessionMetrics::layer_latency(std::size_t layer) {
  std::lock_guard<std::mutex> lock(layers_mu_);
  std::unique_ptr<LatencyHistogram>& slot = layers_[layer];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::size_t SessionMetrics::layer_count() const {
  std::lock_guard<std::mutex> lock(layers_mu_);
  return layers_.size();
}

std::uint64_t SessionMetrics::terminal() const {
  return completed.value() + failed.value() + deadline_exceeded.value() + rejected.value();
}

std::string SessionMetrics::to_json() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  const std::pair<const char*, const Counter*> counters[] = {
      {"started", &started},
      {"completed", &completed},
      {"failed", &failed},
      {"deadline_exceeded", &deadline_exceeded},
      {"rejected", &rejected},
      {"layers_completed", &layers_completed},
  };
  for (std::size_t i = 0; i < std::size(counters); ++i) {
    out << (i ? ", " : "") << "\"" << counters[i].first << "\": " << counters[i].second->value();
  }
  out << "},\n  \"gauges\": {\"active\": " << active.value()
      << "},\n  \"latency_ns\": {\"session_e2e\": ";
  append_histogram_json(out, session_e2e);
  out << "},\n  \"layers\": {";
  {
    std::lock_guard<std::mutex> lock(layers_mu_);
    bool first = true;
    for (const auto& [index, h] : layers_) {
      out << (first ? "" : ", ") << "\"" << index << "\": ";
      append_histogram_json(out, *h);
      first = false;
    }
  }
  out << "}\n}\n";
  return out.str();
}

void ServerMetrics::note_batch(std::size_t plan, std::size_t size) {
  std::lock_guard<std::mutex> lock(plans_mu_);
  PlanBatchStats& s = plans_[plan];
  ++s.batches;
  s.requests += size;
  s.max_batch = std::max(s.max_batch, size);
}

std::map<std::size_t, PlanBatchStats> ServerMetrics::plan_batches() const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  return plans_;
}

std::uint64_t ServerMetrics::terminal() const {
  return rejected_queue_full.value() + rejected_draining.value() + completed.value() +
         failed.value() + cancelled.value() + deadline_expired_at_admission.value() +
         deadline_expired_in_queue.value();
}

std::string ServerMetrics::to_json(std::int64_t pool_threads, std::int64_t pool_pending,
                                   const std::string& certificates) const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  const std::pair<const char*, const Counter*> counters[] = {
      {"submitted", &submitted},
      {"admitted", &admitted},
      {"rejected_queue_full", &rejected_queue_full},
      {"rejected_draining", &rejected_draining},
      {"completed", &completed},
      {"failed", &failed},
      {"cancelled", &cancelled},
      {"deadline_expired_at_admission", &deadline_expired_at_admission},
      {"deadline_expired_in_queue", &deadline_expired_in_queue},
      {"batches_dispatched", &batches_dispatched},
      {"plans_certified_proven", &plans_certified_proven},
      {"plans_certified_unproven", &plans_certified_unproven},
      {"plans_rejected_uncertified", &plans_rejected_uncertified},
  };
  for (std::size_t i = 0; i < std::size(counters); ++i) {
    out << (i ? ", " : "") << "\"" << counters[i].first << "\": " << counters[i].second->value();
  }
  out << "},\n  \"gauges\": {\"queue_depth\": " << queue_depth.value()
      << ", \"inflight\": " << inflight.value() << "},\n  \"latency_ns\": {";
  const std::pair<const char*, const LatencyHistogram*> histograms[] = {
      {"queue_wait", &queue_wait}, {"service", &service}, {"end_to_end", &end_to_end}};
  for (std::size_t i = 0; i < std::size(histograms); ++i) {
    out << (i ? ", " : "") << "\"" << histograms[i].first << "\": ";
    append_histogram_json(out, *histograms[i].second);
  }
  out << "},\n  \"plans\": {";
  {
    const auto plans = plan_batches();
    bool first = true;
    for (const auto& [id, s] : plans) {
      out << (first ? "" : ", ") << "\"" << id << "\": {\"batches\": " << s.batches
          << ", \"requests\": " << s.requests << ", \"max_batch\": " << s.max_batch
          << ", \"mean_batch\": " << s.mean_batch() << "}";
      first = false;
    }
  }
  out << "},\n  \"certificates\": {" << certificates;
  const fft::TransformCacheStats tc = fft::transform_cache_stats();
  out << "},\n  \"transform_cache\": {\"hits\": " << tc.hits << ", \"misses\": " << tc.misses
      << ", \"ntt_hits\": " << tc.ntt_hits << ", \"ntt_misses\": " << tc.ntt_misses
      << ", \"fft_hits\": " << tc.fft_hits << ", \"fft_misses\": " << tc.fft_misses
      << ", \"fxp_hits\": " << tc.fxp_hits << ", \"fxp_misses\": " << tc.fxp_misses
      << ", \"entries\": " << tc.ntt_entries + tc.fft_entries + tc.fxp_entries
      << "},\n  \"pool\": {\"threads\": " << pool_threads << ", \"pending_jobs\": " << pool_pending
      << "}\n}\n";
  return out.str();
}

double json_number_at(const std::string& json, const std::string& context,
                      const std::string& key) {
  std::size_t from = 0;
  if (!context.empty()) {
    from = json.find(context);
    if (from == std::string::npos) return std::nan("");
  }
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle, from);
  if (at == std::string::npos) return std::nan("");
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

}  // namespace flash::serve
