#include "serve/conv_server.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace flash::serve {

namespace {

std::atomic<void (*)(std::size_t, std::size_t)> g_batch_hook{nullptr};

std::uint64_t elapsed_ns(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

/// FNV-1a over the weight values: two plans batch together only when their
/// kernels agree value-for-value, not merely in shape.
std::uint64_t fnv1a(const std::vector<hemath::i64>& values) {
  std::uint64_t h = 1469598103934665603ull;
  for (hemath::i64 v : values) {
    auto u = static_cast<std::uint64_t>(v);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (u >> (8 * byte)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Content key: every input that can change a single output bit of a request
/// participates. Specs that collide here are interchangeable by construction.
std::string plan_key(const PlanSpec& spec) {
  const bfv::BfvParams& p = spec.ctx->params();
  std::ostringstream key;
  key << p.n << '/' << p.q << '/' << p.t << '/' << p.error_sigma << '|'
      << static_cast<int>(spec.backend) << '|';
  if (spec.approx_config.has_value()) {
    const fft::FxpFftConfig& c = *spec.approx_config;
    key << c.input_frac_bits << ',' << c.data_width << ',' << c.twiddle_k << ','
        << c.twiddle_min_exp << ',' << static_cast<int>(c.rounding) << ',';
    for (int b : c.stage_frac_bits) key << b << ';';
  }
  key << '|' << spec.protocol_seed << '|' << spec.stride << ',' << spec.pad << '|'
      << spec.weights.out_channels() << 'x' << spec.weights.in_channels() << 'x'
      << spec.weights.kernel_h() << 'x' << spec.weights.kernel_w() << '|' << spec.in_h << 'x'
      << spec.in_w << '|' << fnv1a(spec.weights.data());
  return key.str();
}

}  // namespace

const char* to_string(RequestState s) {
  switch (s) {
    case RequestState::kQueued: return "queued";
    case RequestState::kRunning: return "running";
    case RequestState::kDone: return "done";
    case RequestState::kRejected: return "rejected";
    case RequestState::kCancelled: return "cancelled";
    case RequestState::kDeadlineExceeded: return "deadline_exceeded";
    case RequestState::kFailed: return "failed";
  }
  return "?";
}

/// Shared request record. `mu` guards state transitions and the result;
/// the payload fields (x, stream_base, deadline, plan) are written before
/// the record is published to the queue and read-only afterwards.
struct ConvFuture::Shared {
  // Immutable after submit().
  PlanId plan = 0;
  tensor::Tensor3 x{1, 1, 1};
  std::uint64_t stream = 0;
  std::optional<Clock::time_point> deadline;
  Clock::time_point admit_time{};
  ServerMetrics* metrics = nullptr;  // valid while non-terminal (server alive)

  mutable std::mutex mu;
  std::condition_variable cv;
  RequestState state FLASH_GUARDED_BY(mu) = RequestState::kQueued;
  protocol::ConvRunnerResult result FLASH_GUARDED_BY(mu);
  std::string error FLASH_GUARDED_BY(mu);
  double retry_after_s FLASH_GUARDED_BY(mu) = 0.0;
  /// Fired exactly once, after the terminal transition and with no locks
  /// held (see ConvFuture::on_terminal). Taken under mu, invoked outside it.
  std::function<void()> on_terminal FLASH_GUARDED_BY(mu);

  static bool terminal(RequestState s) {
    return s != RequestState::kQueued && s != RequestState::kRunning;
  }

  /// Move the callback out under the lock so the (unlocked) caller fires it
  /// exactly once; every terminal transition site goes through this.
  std::function<void()> take_callback() FLASH_REQUIRES(mu) {
    std::function<void()> cb = std::move(on_terminal);
    on_terminal = nullptr;
    return cb;
  }

  void complete(RequestState terminal_state) {
    std::function<void()> cb;
    {
      std::lock_guard<std::mutex> lock(mu);
      state = terminal_state;
      cb = take_callback();
      cv.notify_all();
    }
    if (cb) cb();
  }
};

// The cv-wait predicates below read guarded state under the waited-on lock —
// a pattern the static analysis cannot follow through std::unique_lock
// (thread_annotations.hpp conventions), hence NO_THREAD_SAFETY_ANALYSIS.
void ConvFuture::wait() const FLASH_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->cv.wait(lock, [&] { return Shared::terminal(shared_->state); });
}

bool ConvFuture::wait_for(std::chrono::nanoseconds d) const FLASH_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(shared_->mu);
  return shared_->cv.wait_for(lock, d, [&] { return Shared::terminal(shared_->state); });
}

bool ConvFuture::done() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return Shared::terminal(shared_->state);
}

RequestState ConvFuture::state() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state;
}

const protocol::ConvRunnerResult& ConvFuture::result() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  if (shared_->state != RequestState::kDone) {
    throw std::logic_error(std::string("ConvFuture::result() in state ") +
                           to_string(shared_->state));
  }
  return shared_->result;
}

std::string ConvFuture::error() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->error;
}

double ConvFuture::retry_after_s() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->retry_after_s;
}

std::uint64_t ConvFuture::stream() const { return shared_->stream; }

bool ConvFuture::cancel() {
  std::function<void()> cb;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->state != RequestState::kQueued) return false;
    // A kQueued request implies the server is alive (drain forces every
    // queued request terminal before the server dies) — but only until the
    // kCancelled state is observable: the moment we release mu, a dispatcher
    // can sweep this entry, drain() can return, and the server (owner of
    // `metrics`) can be destroyed. So the counter update must happen here,
    // before the transition publishes, not after the unlock.
    shared_->metrics->cancelled.inc();
    shared_->state = RequestState::kCancelled;
    cb = shared_->take_callback();
    shared_->cv.notify_all();
  }
  if (cb) cb();
  return true;
}

void ConvFuture::on_terminal(std::function<void()> fn) {
  bool fire_now = false;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (Shared::terminal(shared_->state)) {
      fire_now = true;  // fire below, outside the lock
    } else {
      shared_->on_terminal = std::move(fn);
    }
  }
  if (fire_now) fn();
}

/// One registered layer: its own protocol instance (per-plan seed and
/// backend) plus the precomputed ConvPlan. Immutable after construction
/// except for the stream counter.
struct ConvServer::Plan {
  Plan(const PlanSpec& spec, core::ThreadPool* pool)
      : key(plan_key(spec)),
        protocol(*spec.ctx, spec.backend, spec.approx_config, spec.protocol_seed, pool),
        runner(protocol, pool),
        conv_plan(runner.prepare(spec.weights.in_channels(), spec.in_h, spec.in_w, spec.weights,
                                 spec.stride, spec.pad)) {}

  std::string key;
  protocol::HConvProtocol protocol;
  protocol::ConvRunner runner;
  std::shared_ptr<const protocol::ConvPlan> conv_plan;
  /// Decryption-correctness certificate, set at registration unless
  /// CertifyPolicy::kOff; immutable afterwards (read without a lock).
  std::optional<protocol::PlanCertificate> certificate;
  std::atomic<std::uint64_t> next_stream{0};
};

ConvServer::ConvServer(ServerOptions options) : options_(options) {
  dispatchers_.reserve(options_.dispatchers);
  for (std::size_t i = 0; i < options_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

ConvServer::~ConvServer() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
}

PlanId ConvServer::register_plan(const PlanSpec& spec) {
  if (spec.ctx == nullptr) throw std::invalid_argument("PlanSpec.ctx is null");
  if (spec.in_h == 0 || spec.in_w == 0) throw std::invalid_argument("PlanSpec input shape unset");
  const std::string key = plan_key(spec);
  {
    std::lock_guard<std::mutex> lock(plans_mu_);
    for (std::size_t i = 0; i < plans_.size(); ++i) {
      if (plans_[i]->key == key) return i;
    }
  }
  // Prepare outside the lock: weight transforms are the expensive part and
  // registrations for different plans shouldn't serialize. A concurrent
  // duplicate registration wastes one preparation; content-identical plans
  // still dedup below (first insert wins).
  auto plan = std::make_shared<Plan>(spec, options_.pool);
  if (options_.certify != CertifyPolicy::kOff) {
    plan->certificate = protocol::certify_plan(spec.ctx->params(), spec.backend,
                                               spec.approx_config, *plan->conv_plan);
    if (plan->certificate->proven()) {
      metrics_.plans_certified_proven.inc();
    } else if (options_.certify == CertifyPolicy::kEnforce) {
      metrics_.plans_rejected_uncertified.inc();
      throw std::invalid_argument("plan failed decryption-correctness certification: " +
                                  plan->certificate->overall.detail);
    } else {
      metrics_.plans_certified_unproven.inc();
    }
  }
  std::lock_guard<std::mutex> lock(plans_mu_);
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    if (plans_[i]->key == key) return i;
  }
  plans_.push_back(std::move(plan));
  return plans_.size() - 1;
}

std::optional<protocol::PlanCertificate> ConvServer::plan_certificate(PlanId plan) const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  if (plan >= plans_.size()) return std::nullopt;
  return plans_[plan]->certificate;
}

// submit/dispatch/drain below hand a std::unique_lock across early-unlock
// and helper boundaries, which the static analysis cannot follow
// (thread_annotations.hpp conventions) — annotated out one by one, never a
// blanket file-level opt-out; every lock_guard-only path stays analyzed.
ConvFuture ConvServer::submit(PlanId plan_id, tensor::Tensor3 x,
                              SubmitOptions options) FLASH_NO_THREAD_SAFETY_ANALYSIS {
  std::shared_ptr<Plan> plan;
  {
    std::lock_guard<std::mutex> lock(plans_mu_);
    if (plan_id >= plans_.size()) throw std::out_of_range("unknown PlanId");
    plan = plans_[plan_id];
  }

  metrics_.submitted.inc();
  auto shared = std::make_shared<ConvFuture::Shared>();
  shared->plan = plan_id;
  shared->x = std::move(x);
  shared->metrics = &metrics_;
  shared->admit_time = now();
  if (options.timeout.has_value()) {
    shared->deadline = shared->admit_time + *options.timeout;
  } else {
    shared->deadline = options.deadline;
  }

  // Deadline already expired: terminal before it ever costs queue space.
  if (shared->deadline.has_value() && now() >= *shared->deadline) {
    metrics_.deadline_expired_at_admission.inc();
    shared->complete(RequestState::kDeadlineExceeded);
    return ConvFuture(shared);
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_ || stop_) {
      lock.unlock();
      metrics_.rejected_draining.inc();
      std::lock_guard<std::mutex> slock(shared->mu);
      shared->state = RequestState::kRejected;
      shared->error = "server draining";
      shared->retry_after_s = 0.0;  // draining is permanent; do not retry here
      shared->cv.notify_all();
      return ConvFuture(shared);
    }
    if (queue_.size() >= options_.max_queue) {
      lock.unlock();
      metrics_.rejected_queue_full.inc();
      const double retry_after = retry_after_estimate_s();
      std::lock_guard<std::mutex> slock(shared->mu);
      shared->state = RequestState::kRejected;
      shared->error = "queue full";
      shared->retry_after_s = retry_after;
      shared->cv.notify_all();
      return ConvFuture(shared);
    }
    shared->stream = options.stream.has_value()
                         ? *options.stream
                         : plan->next_stream.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(shared);
    metrics_.admitted.inc();
    metrics_.queue_depth.add(1);
  }
  queue_cv_.notify_one();
  return ConvFuture(shared);
}

bool ConvServer::dispatch_once() FLASH_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  dispatch_batch(lock);
  return true;
}

void ConvServer::dispatch_batch(std::unique_lock<std::mutex>& lock)
    FLASH_NO_THREAD_SAFETY_ANALYSIS {
  // Oldest request picks the plan (FIFO fairness across plans); same-plan
  // requests anywhere in the queue ride along up to max_batch.
  std::vector<std::shared_ptr<ConvFuture::Shared>> batch;
  const PlanId plan_id = queue_.front()->plan;
  const std::size_t limit = std::max<std::size_t>(options_.max_batch, 1);
  for (auto it = queue_.begin(); it != queue_.end() && batch.size() < limit;) {
    if ((*it)->plan == plan_id) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  metrics_.queue_depth.sub(static_cast<std::int64_t>(batch.size()));
  metrics_.inflight.add(static_cast<std::int64_t>(batch.size()));

  std::shared_ptr<Plan> plan;
  {
    std::lock_guard<std::mutex> plock(plans_mu_);
    plan = plans_[plan_id];
  }

  lock.unlock();
  run_batch(*plan, batch);
  lock.lock();
  drain_cv_.notify_all();
}

void ConvServer::run_batch(Plan& plan, std::vector<std::shared_ptr<ConvFuture::Shared>>& batch) {
  if (auto* hook = g_batch_hook.load(std::memory_order_acquire)) {
    hook(batch.front()->plan, batch.size());
  }
  const Clock::time_point pickup = now();
  std::size_t executed = 0;

  for (auto& req : batch) {
    // Claim: exactly one of {this claim, a racing cancel()} wins. A lost
    // claim (already cancelled) just releases the slot.
    {
      bool deadline_expired = false;
      std::function<void()> cb;
      {
        std::lock_guard<std::mutex> lock(req->mu);
        if (req->state == RequestState::kCancelled) {
          // cancel() already fired the completion callback.
          metrics_.inflight.sub(1);
          continue;
        }
        if (req->deadline.has_value() && now() >= *req->deadline) {
          req->state = RequestState::kDeadlineExceeded;
          cb = req->take_callback();
          req->cv.notify_all();
          deadline_expired = true;
        } else {
          req->state = RequestState::kRunning;
        }
      }
      if (deadline_expired) {
        metrics_.deadline_expired_in_queue.inc();
        metrics_.inflight.sub(1);
        if (cb) cb();
        continue;
      }
    }
    const Clock::time_point start = now();
    metrics_.queue_wait.record_ns(elapsed_ns(req->admit_time, start));

    protocol::ConvRunnerResult result;
    std::string error;
    bool ok = true;
    try {
      result = plan.runner.run(req->x, *plan.conv_plan, req->stream << 32);
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    }

    const Clock::time_point end = now();
    std::function<void()> cb;
    {
      std::lock_guard<std::mutex> lock(req->mu);
      if (ok) {
        req->result = std::move(result);
        req->state = RequestState::kDone;
      } else {
        req->error = std::move(error);
        req->state = RequestState::kFailed;
      }
      cb = req->take_callback();
      req->cv.notify_all();
    }
    (ok ? metrics_.completed : metrics_.failed).inc();
    metrics_.service.record_ns(elapsed_ns(start, end));
    metrics_.end_to_end.record_ns(elapsed_ns(req->admit_time, end));
    metrics_.inflight.sub(1);
    // Fired after the metrics update so a callback observing the server
    // sees this request fully accounted; no locks are held here, so the
    // callback may submit follow-up requests.
    if (cb) cb();
    ++executed;
  }

  if (executed > 0) {
    metrics_.batches_dispatched.inc();
    metrics_.note_batch(batch.front()->plan, executed);
    const std::uint64_t batch_ns = elapsed_ns(pickup, now());
    const std::uint64_t prev = batch_ewma_q8_.load(std::memory_order_relaxed);
    batch_ewma_q8_.store(ewma::update_q8(prev, batch_ns), std::memory_order_relaxed);
  }
}

double ConvServer::retry_after_estimate_s() const {
  const std::uint64_t per_batch_ns = ewma::ewma_ns(batch_ewma_q8_.load(std::memory_order_relaxed));
  if (per_batch_ns == 0) {
    // Cold start: no batch has been timed yet. The configured default is
    // the hint, clamped to the positive floor — a 0 here would tell every
    // rejected client to hammer the server again immediately.
    return std::max(options_.default_retry_after_s, kMinRetryAfterS);
  }
  // Full queue => ~max_queue/max_batch batches ahead of a retried request.
  const double batches_ahead =
      static_cast<double>(options_.max_queue) /
          static_cast<double>(std::max<std::size_t>(options_.max_batch, 1)) +
      1.0;
  return std::max(batches_ahead * static_cast<double>(per_batch_ns) * 1e-9, kMinRetryAfterS);
}

void ConvServer::drain() FLASH_NO_THREAD_SAFETY_ANALYSIS {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  if (options_.dispatchers == 0) {
    while (dispatch_once()) {
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] {
    return queue_.empty() && metrics_.inflight.value() == 0;
  });
}

void ConvServer::dispatcher_loop() FLASH_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (!queue_.empty()) {
      dispatch_batch(lock);
      continue;  // re-check: stop_ may have been set while we ran
    }
    if (stop_) return;
  }
}

std::string ConvServer::metrics_json() const {
  // Per-plan certification verdicts, rendered here (not in ServerMetrics —
  // the certificates live on the plans). Snapshot the shared_ptrs under the
  // lock, format outside it.
  std::vector<std::shared_ptr<Plan>> plans;
  {
    std::lock_guard<std::mutex> lock(plans_mu_);
    plans = plans_;
  }
  std::string certs;
  char buf[160];
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (!plans[i]->certificate.has_value()) continue;
    const analysis::PipelineCertificate& c = plans[i]->certificate->overall;
    std::snprintf(buf, sizeof buf,
                  "%s\"%zu\": {\"verdict\": \"%s\", \"certified_bits\": %.2f, "
                  "\"margin_bits\": %.2f}",
                  certs.empty() ? "" : ", ", i, analysis::to_string(c.verdict),
                  c.certified_noise_bits, c.margin_bits);
    certs += buf;
  }
  if (options_.pool != nullptr) {
    return metrics_.to_json(static_cast<std::int64_t>(options_.pool->thread_count()),
                            static_cast<std::int64_t>(options_.pool->pending_jobs()), certs);
  }
  return metrics_.to_json(-1, -1, certs);
}

namespace testing_hooks {
void set_batch_hook(void (*hook)(std::size_t, std::size_t)) {
  g_batch_hook.store(hook, std::memory_order_release);
}
}  // namespace testing_hooks

}  // namespace flash::serve
