// Network-session serving on top of ConvServer (ARCHITECTURE.md §10).
//
// One session = one private inference through a whole network: an ordered
// tensor::LayerStack where layer k+1 consumes layer k's output. The session
// layer turns that dependency chain into ConvServer traffic:
//
//   * a NetworkProgram lowers a LayerStack once: each conv layer becomes a
//     registered plan (content-deduplicated — two sessions of the same
//     network share every plan), local layers (residual joins, the FC head)
//     stay host-side;
//   * a NetworkSession walks the program via ConvFuture::on_terminal
//     chaining: when layer k's conv completes, the callback reconstructs,
//     applies the layer's post-ops and submits layer k+1 — no thread parks
//     waiting on a future, so any number of sessions pipeline through one
//     dispatcher;
//   * cross-session pipelining falls out of plan dedup: while session A is
//     on layer 3, session B's layer-3 request lands in the same plan queue
//     and batches with it (pinned by test_network_serve).
//
// Determinism contract, one level up from ConvServer's: a session with
// stream base S executes conv layer k on ConvServer stream S + k, i.e.
// runner base (S + k) << 32 — so the whole session is bit-identical to a
// serial bare-runner run (run_network_serial) with the same base, no matter
// how sessions interleave, batch, or how many dispatchers run. The network
// oracle (testing/oracle.hpp) enforces exactly this.
#pragma once

#include <atomic>
#include <memory>

#include "serve/conv_server.hpp"
#include "tensor/network.hpp"

namespace flash::serve {

/// Consecutive sessions' default stream bases are spaced this far apart, so
/// a session has room for that many conv layers before its streams could
/// collide with the next session's. Explicit SessionOptions::stream_base
/// values should keep the same spacing.
inline constexpr std::uint64_t kSessionStreamStride = 1024;

/// A LayerStack lowered onto a ConvServer: per-layer plan ids plus the
/// shape chain. Immutable; shared by every session of the same network.
struct NetworkProgram {
  struct Layer {
    tensor::NetLayer op;
    /// Valid iff op.kind == kConv.
    PlanId plan = 0;
    tensor::Shape3 in_shape;
  };

  std::vector<Layer> layers;
  std::uint64_t t = 0;  // sharing modulus, for share reconstruction
  std::size_t fc_ring_n = 0;  // ring degree for the FC matvec encoding
  std::size_t conv_layers = 0;

  /// Lower `stack` for `server`: registers one plan per conv layer (with the
  /// shared protocol seed), validates the shape chain from `input_shape`
  /// (residual sources saved and shape-matched, FC last with
  /// flatten <= ring degree). Throws std::invalid_argument on any mismatch.
  static NetworkProgram build(ConvServer& server, const tensor::LayerStack& stack,
                              const bfv::BfvContext& ctx, bfv::PolyMulBackend backend,
                              const std::optional<fft::FxpFftConfig>& approx_config,
                              std::uint64_t protocol_seed, tensor::Shape3 input_shape);
};

enum class SessionState {
  kRunning,
  kCompleted,
  kRejected,           // a layer submit was shed; error() carries the retry hint
  kDeadlineExceeded,   // session deadline hit (at a layer boundary or inside the server)
  kFailed,             // a layer threw or the server failed the request
};

const char* to_string(SessionState s);

struct SessionOptions {
  /// Absolute session deadline; alternatively `budget` (relative, measured
  /// from start(); `deadline` wins if both are set). The deadline is also
  /// passed down to every conv submit, so the server sheds a doomed
  /// session's layers instead of computing them.
  std::optional<Clock::time_point> deadline;
  std::optional<std::chrono::nanoseconds> budget;
  /// Session stream base (determinism key; see kSessionStreamStride).
  /// Defaults to a per-NetworkServer counter * kSessionStreamStride.
  std::optional<std::uint64_t> stream_base;
  /// Record every layer's post-op activation (the oracle's comparison
  /// surface; costs one tensor copy per layer).
  bool record_layer_outputs = false;
};

/// Handle to one running session. Copyable; copies share one state. Safe to
/// wait on from any thread.
class NetworkSession {
 public:
  NetworkSession() = default;

  void wait() const;
  bool wait_for(std::chrono::nanoseconds d) const;
  bool done() const;
  SessionState state() const;

  /// Valid iff state() == kCompleted (std::logic_error otherwise).
  const tensor::Tensor3& features() const;
  /// Valid iff completed and the program ends in an FC layer.
  const std::vector<tensor::i64>& logits() const;
  bool has_logits() const;

  std::string error() const;
  std::size_t layers_completed() const;
  std::uint64_t stream_base() const;
  /// Copy of the recorded per-layer outputs (record_layer_outputs only);
  /// FC layers record logits as a 1x1xF tensor, same convention as
  /// LayerStack::forward.
  std::vector<tensor::Tensor3> layer_outputs() const;

 private:
  friend class NetworkServer;
  struct Shared;
  explicit NetworkSession(std::shared_ptr<Shared> shared) : shared_(std::move(shared)) {}
  std::shared_ptr<Shared> shared_;
};

/// Session front-end over one ConvServer. Does not own the server; the
/// server (and the contexts its plans reference) must outlive all session
/// activity. Cheap to construct; all state is per-session.
class NetworkServer {
 public:
  explicit NetworkServer(ConvServer& server);

  /// Start one session. Validates the input shape against the program's
  /// first layer; the session then advances itself via completion callbacks.
  /// With dispatchers == 0, nothing runs until dispatch_once() /
  /// run_to_completion().
  NetworkSession start(std::shared_ptr<const NetworkProgram> program, tensor::Tensor3 input,
                       SessionOptions options = {});

  /// Drive every started session to a terminal state on the calling thread
  /// (manual mode) or wait for dispatchers to finish them (threaded mode).
  void run_to_completion();

  const SessionMetrics& session_metrics() const;
  std::string metrics_json() const;

 private:
  friend class NetworkSession;  // session state holds an Impl ref for callbacks
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Serial reference execution: one protocol + runner, every conv layer run
/// as a bare `runner.run(..., (stream_base + conv_index) << 32)` — the exact
/// bytes a served session with the same stream base must produce. Doubles as
/// the sequential baseline in bench_network_serve (it pays the weight
/// transforms per layer per session; the server pays them once per plan).
tensor::NetworkResult run_network_serial(const tensor::LayerStack& stack,
                                         const bfv::BfvContext& ctx, bfv::PolyMulBackend backend,
                                         const std::optional<fft::FxpFftConfig>& approx_config,
                                         std::uint64_t protocol_seed, const tensor::Tensor3& input,
                                         std::uint64_t stream_base,
                                         std::vector<tensor::Tensor3>* layer_outputs = nullptr);

}  // namespace flash::serve
