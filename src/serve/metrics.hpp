// Serving-layer observability (ARCHITECTURE.md §9).
//
// Everything a load test or an operator needs to see the queueing behaviour
// of a ConvServer: monotonic counters for every admission outcome, gauges
// for instantaneous queue depth / inflight batches, log-bucketed latency
// histograms with p50/p95/p99 readouts, and per-plan batch-size statistics
// (the batching win is per plan — a plan that never batches is a plan whose
// weight-transform amortization is not paying for itself).
//
// All hot-path recording is lock-free (relaxed atomics); only the per-plan
// batch map takes a mutex, on the dispatch path, once per batch. Snapshots
// are not a consistent cut across instruments — each value is individually
// atomic, which is what dashboards need and exactly what the drain-quiesced
// assertions in tests rely on (after drain() no writer is left, so the
// snapshot IS consistent).
//
// to_json() emits a stable, dependency-free JSON document (schema below)
// that tests parse numbers back out of and CI artifacts archive.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/thread_annotations.hpp"

namespace flash::serve {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two latency buckets over nanoseconds: bucket i counts samples in
/// [2^i, 2^(i+1)) ns (bucket 0 additionally holds 0 ns). 64 buckets cover
/// every representable duration. Quantiles are read as the upper bound of
/// the bucket where the cumulative count crosses p — an overestimate by at
/// most 2x, which is the honest resolution of a log histogram and plenty to
/// see a tail blow up.
class LatencyHistogram {
 public:
  void record_ns(std::uint64_t ns);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  /// p in (0, 1]; returns 0 when empty.
  double quantile_ns(double p) const;

 private:
  std::array<std::atomic<std::uint64_t>, 64> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Append one histogram as {"count":..,"p50":..,"p95":..,"p99":..,"mean":..}.
/// Centralized so every exporter (ServerMetrics, SessionMetrics, the
/// per-layer histograms) shares one empty-histogram guard: count == 0 emits
/// literal zeros — never a 0/0 NaN — and any non-finite value (impossible by
/// construction, but JSON has no NaN/inf literal, so a regression here would
/// corrupt every archived document) is coerced to 0.
void append_histogram_json(std::ostream& out, const LatencyHistogram& h);

struct PlanBatchStats {
  std::uint64_t batches = 0;
  std::uint64_t requests = 0;
  std::size_t max_batch = 0;
  double mean_batch() const {
    return batches == 0 ? 0.0 : static_cast<double>(requests) / static_cast<double>(batches);
  }
};

/// The full instrument set of one ConvServer. The admission counters
/// partition terminal outcomes: every submitted request ends in exactly one
/// of {rejected_queue_full, rejected_draining, completed, failed, cancelled,
/// deadline_expired_at_admission, deadline_expired_in_queue} — the soak
/// tier's conservation check.
class ServerMetrics {
 public:
  Counter submitted;
  Counter admitted;
  Counter rejected_queue_full;
  Counter rejected_draining;
  Counter completed;
  Counter failed;
  Counter cancelled;
  Counter deadline_expired_at_admission;
  Counter deadline_expired_in_queue;
  Counter batches_dispatched;

  // Registration-path certification outcomes (one per *unique* plan, not per
  // register_plan call — duplicates dedup before certification). Outside the
  // terminal-outcome conservation law above.
  Counter plans_certified_proven;
  Counter plans_certified_unproven;
  Counter plans_rejected_uncertified;

  Gauge queue_depth;
  Gauge inflight;

  LatencyHistogram queue_wait;   // admission -> batch pickup
  LatencyHistogram service;      // batch pickup -> completion
  LatencyHistogram end_to_end;   // admission -> completion

  void note_batch(std::size_t plan, std::size_t size);
  std::map<std::size_t, PlanBatchStats> plan_batches() const;

  /// Terminal-outcome total (see class comment).
  std::uint64_t terminal() const;

  /// JSON document:
  ///   {"counters": {...}, "gauges": {...},
  ///    "latency_ns": {"queue_wait": {"count":..,"p50":..,"p95":..,"p99":..,"mean":..}, ...},
  ///    "plans": {"<id>": {"batches":..,"requests":..,"max_batch":..}, ...},
  ///    "certificates": {"<id>": {"verdict": "...", "margin_bits": ..}, ...},
  ///    "transform_cache": {...}, "pool": {...}}
  /// pool_threads/pool_pending < 0 means "no pool attached". `certificates`
  /// is the pre-rendered body of the per-plan verdict map (empty = no
  /// certified plans — ConvServer::metrics_json fills it).
  std::string to_json(std::int64_t pool_threads = -1, std::int64_t pool_pending = -1,
                      const std::string& certificates = {}) const;

 private:
  mutable std::mutex plans_mu_;
  std::map<std::size_t, PlanBatchStats> plans_ FLASH_GUARDED_BY(plans_mu_);
};

/// The instrument set of one NetworkServer (serve/network_session.hpp),
/// under the same conservation law as ServerMetrics one level up: every
/// started session reaches exactly one of {completed, failed,
/// deadline_exceeded, rejected}, so after quiescence
/// terminal() == started and active == 0.
class SessionMetrics {
 public:
  Counter started;
  Counter completed;
  Counter failed;
  Counter deadline_exceeded;
  Counter rejected;
  /// Network layers finished across all sessions (conv and local alike).
  Counter layers_completed;

  Gauge active;

  LatencyHistogram session_e2e;  // start() -> terminal state

  /// Per-layer-index latency across sessions: layer k of every session
  /// feeds histogram k, which is the pipelining view — batching layer k of
  /// concurrent sessions together is exactly what should compress these.
  /// Lazily created, stable address (the recorder keeps the reference).
  LatencyHistogram& layer_latency(std::size_t layer);
  std::size_t layer_count() const;

  /// Terminal-outcome total (see class comment).
  std::uint64_t terminal() const;

  /// JSON document, same conventions as ServerMetrics::to_json():
  ///   {"counters": {...}, "gauges": {"active": ..},
  ///    "latency_ns": {"session_e2e": {...}},
  ///    "layers": {"<index>": {"count":..,"p50":..,...}, ...}}
  std::string to_json() const;

 private:
  mutable std::mutex layers_mu_;
  std::map<std::size_t, std::unique_ptr<LatencyHistogram>> layers_ FLASH_GUARDED_BY(layers_mu_);
};

/// Parse a number back out of a to_json() document: finds `"key": <number>`
/// after the (optional) `context` substring. Returns NaN when absent. This
/// is deliberately in the library, not test code: asserting on the exported
/// JSON (rather than on the in-memory counters) is what pins the export
/// format, and every consumer should use one parser.
double json_number_at(const std::string& json, const std::string& context,
                      const std::string& key);

}  // namespace flash::serve
