// The serving layer's one clock.
//
// Every deadline, retry-after and latency computation in serve/ (and in the
// shard router on top of it) reads time through serve::now() instead of
// calling std::chrono::steady_clock::now() directly. Two reasons:
//
//   * Monotonicity by construction: steady_clock is the only legal base.
//     Routing every read through one function keeps a wall-clock read from
//     creeping into deadline arithmetic (where an NTP step would expire or
//     resurrect requests).
//   * Test injection: testing_hooks::advance_clock() shifts the returned
//     time by a process-wide offset, so deadline tests can move time forward
//     deterministically instead of sleeping. The offset only ever grows —
//     the injected clock stays monotonic.
#pragma once

#include <chrono>

namespace flash::serve {

using Clock = std::chrono::steady_clock;

/// Monotonic now(): steady_clock plus the test-injected offset (zero in
/// production). All serving-layer deadline comparisons use this.
Clock::time_point now();

namespace testing_hooks {
/// Advance the serving clock by `delta` (additive, process-wide). Negative
/// deltas are ignored — the injected clock must stay monotonic.
void advance_clock(std::chrono::nanoseconds delta);
/// Reset the injected offset to zero (between tests; the real clock's
/// monotonicity makes this safe only when no requests are in flight).
void reset_clock();
}  // namespace testing_hooks

}  // namespace flash::serve
