#include "serve/network_session.hpp"

#include <condition_variable>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "encoding/matvec.hpp"

namespace flash::serve {

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::kRunning: return "running";
    case SessionState::kCompleted: return "completed";
    case SessionState::kRejected: return "rejected";
    case SessionState::kDeadlineExceeded: return "deadline_exceeded";
    case SessionState::kFailed: return "failed";
  }
  return "?";
}

NetworkProgram NetworkProgram::build(ConvServer& server, const tensor::LayerStack& stack,
                                     const bfv::BfvContext& ctx, bfv::PolyMulBackend backend,
                                     const std::optional<fft::FxpFftConfig>& approx_config,
                                     std::uint64_t protocol_seed, tensor::Shape3 input_shape) {
  if (stack.layers.empty()) throw std::invalid_argument("NetworkProgram: empty stack");
  NetworkProgram program;
  program.t = ctx.params().t;
  program.fc_ring_n = ctx.params().n;

  tensor::Shape3 shape = input_shape;
  std::vector<tensor::Shape3> saved;
  for (std::size_t i = 0; i < stack.layers.size(); ++i) {
    const tensor::NetLayer& op = stack.layers[i];
    Layer layer;
    layer.op = op;
    layer.in_shape = shape;
    switch (op.kind) {
      case tensor::NetLayer::Kind::kConv: {
        PlanSpec spec;
        spec.ctx = &ctx;
        spec.backend = backend;
        spec.approx_config = approx_config;
        spec.protocol_seed = protocol_seed;
        spec.weights = op.weights;
        spec.stride = op.stride;
        spec.pad = op.pad;
        spec.in_h = shape.h;
        spec.in_w = shape.w;
        layer.plan = server.register_plan(spec);
        ++program.conv_layers;
        break;
      }
      case tensor::NetLayer::Kind::kResidualAdd: {
        if (op.source >= saved.size()) {
          throw std::invalid_argument("NetworkProgram: residual source not saved yet");
        }
        if (!(saved[op.source] == shape)) {
          throw std::invalid_argument("NetworkProgram: residual shape mismatch");
        }
        break;
      }
      case tensor::NetLayer::Kind::kFullyConnected: {
        if (i + 1 != stack.layers.size()) {
          throw std::invalid_argument("NetworkProgram: FC layer must be last");
        }
        if (shape.volume() > program.fc_ring_n) {
          throw std::invalid_argument("NetworkProgram: FC in_features exceeds ring degree");
        }
        break;
      }
    }
    // Shared shape chain with the cleartext forward (also validates FC
    // weight size and conv geometry).
    shape = tensor::LayerStack::layer_output_shape(shape, op);
    if (op.save_output) saved.push_back(shape);
    program.layers.push_back(std::move(layer));
  }
  return program;
}

/// All mutable session state. The mutex order is session mu -> server mu_
/// (advance() unlocks before submit()); completion callbacks arrive with no
/// server locks held (ConvFuture::on_terminal contract), so re-locking the
/// session there is safe.
struct NetworkSession::Shared {
  std::shared_ptr<const NetworkProgram> program;
  std::shared_ptr<NetworkServer::Impl> impl;  // keeps metrics alive for callbacks
  std::uint64_t stream_base = 0;
  std::optional<Clock::time_point> deadline;
  Clock::time_point start_time;
  bool record = false;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  SessionState state FLASH_GUARDED_BY(mu) = SessionState::kRunning;
  tensor::Tensor3 activation FLASH_GUARDED_BY(mu) {1, 1, 1};
  std::vector<tensor::Tensor3> saved FLASH_GUARDED_BY(mu);
  std::vector<tensor::i64> logits FLASH_GUARDED_BY(mu);
  bool has_logits FLASH_GUARDED_BY(mu) = false;
  std::size_t next_layer FLASH_GUARDED_BY(mu) = 0;
  std::size_t conv_index FLASH_GUARDED_BY(mu) = 0;  // conv layers completed or inflight
  std::string error FLASH_GUARDED_BY(mu);
  std::vector<tensor::Tensor3> outputs FLASH_GUARDED_BY(mu);
};

struct NetworkServer::Impl : std::enable_shared_from_this<NetworkServer::Impl> {
  explicit Impl(ConvServer& s) : server(s) {}

  ConvServer& server;
  SessionMetrics metrics;
  std::atomic<std::uint64_t> next_stream_base{0};

  std::mutex sessions_mu;
  std::vector<std::weak_ptr<NetworkSession::Shared>> sessions FLASH_GUARDED_BY(sessions_mu);

  void advance(const std::shared_ptr<NetworkSession::Shared>& s);
  void on_conv_terminal(const std::shared_ptr<NetworkSession::Shared>& s, ConvFuture fut,
                        std::size_t layer_index, Clock::time_point submitted);
  void finish(const std::shared_ptr<NetworkSession::Shared>& s,
              std::unique_lock<std::mutex>& lock, SessionState state, std::string error);

  /// Post-op + bookkeeping for one finished layer. Pre: s->mu held,
  /// `value` is the layer's post-op activation (or logits tensor for FC —
  /// which does NOT replace the activation: features() is the pre-FC
  /// activation, the LayerStack::forward convention).
  void commit_layer(NetworkSession::Shared& s, std::size_t layer_index, tensor::Tensor3 value,
                    Clock::time_point layer_start) FLASH_NO_THREAD_SAFETY_ANALYSIS;
};

void NetworkServer::Impl::commit_layer(NetworkSession::Shared& s, std::size_t layer_index,
                                       tensor::Tensor3 value, Clock::time_point layer_start) {
  const NetworkProgram::Layer& layer = s.program->layers[layer_index];
  if (layer.op.save_output) s.saved.push_back(value);
  if (s.record) s.outputs.push_back(value);
  if (layer.op.kind != tensor::NetLayer::Kind::kFullyConnected) s.activation = std::move(value);
  s.next_layer = layer_index + 1;
  metrics.layers_completed.inc();
  const auto now_tp = now();
  metrics.layer_latency(layer_index)
      .record_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now_tp - layer_start).count()));
}

void NetworkServer::Impl::finish(const std::shared_ptr<NetworkSession::Shared>& s,
                                 std::unique_lock<std::mutex>& lock, SessionState state,
                                 std::string error) {
  s->state = state;
  s->error = std::move(error);
  s->cv.notify_all();
  lock.unlock();
  // Metrics after unlock: nothing reads them under the session lock, and the
  // conservation law only holds at quiescence anyway.
  switch (state) {
    case SessionState::kCompleted: metrics.completed.inc(); break;
    case SessionState::kRejected: metrics.rejected.inc(); break;
    case SessionState::kDeadlineExceeded: metrics.deadline_exceeded.inc(); break;
    case SessionState::kFailed: metrics.failed.inc(); break;
    case SessionState::kRunning: break;  // unreachable
  }
  metrics.active.sub(1);
  metrics.session_e2e.record_ns(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now() - s->start_time).count()));
}

// advance() walks local layers inline and stops at the first conv layer,
// which it submits with the session lock dropped; the conv's on_terminal
// callback re-enters advance(). The explicit unlock/relock pattern is
// invisible to the static analysis (thread_annotations.hpp conventions).
void NetworkServer::Impl::advance(const std::shared_ptr<NetworkSession::Shared>& s)
    FLASH_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(s->mu);
  while (true) {
    if (s->state != SessionState::kRunning) return;
    if (s->deadline && now() >= *s->deadline) {
      finish(s, lock, SessionState::kDeadlineExceeded, "session deadline exceeded");
      return;
    }
    if (s->next_layer >= s->program->layers.size()) {
      finish(s, lock, SessionState::kCompleted, {});
      return;
    }
    const std::size_t layer_index = s->next_layer;
    const NetworkProgram::Layer& layer = s->program->layers[layer_index];
    switch (layer.op.kind) {
      case tensor::NetLayer::Kind::kConv: {
        SubmitOptions opts;
        opts.deadline = s->deadline;
        opts.stream = s->stream_base + s->conv_index;
        tensor::Tensor3 x = s->activation;
        const auto submitted = now();
        lock.unlock();
        ConvFuture fut = server.submit(layer.plan, std::move(x), opts);
        // Registered after submit so an immediate (rejected / past-deadline)
        // terminal fires here, on this thread, with no locks held. The
        // callback owns a shared_ptr to the session AND to this Impl, so
        // session state and metrics outlive the NetworkServer handle.
        auto self = shared_from_this();
        fut.on_terminal([self, s, fut, layer_index, submitted]() mutable {
          self->on_conv_terminal(s, std::move(fut), layer_index, submitted);
        });
        return;
      }
      case tensor::NetLayer::Kind::kResidualAdd: {
        const auto layer_start = now();
        tensor::Tensor3 joined{1, 1, 1};
        try {
          joined = tensor::add(s->activation, s->saved.at(layer.op.source));
          tensor::apply_join_postops(joined, layer.op);
        } catch (const std::exception& e) {
          finish(s, lock, SessionState::kFailed, e.what());
          return;
        }
        commit_layer(*s, layer_index, std::move(joined), layer_start);
        break;
      }
      case tensor::NetLayer::Kind::kFullyConnected: {
        const auto layer_start = now();
        tensor::Tensor3 logits_t(1, 1, layer.op.fc_out);
        try {
          s->logits = encoding::matvec_via_encoding(layer.op.fc_weights, s->activation.data(),
                                                    layer.op.fc_out, s->program->fc_ring_n);
          s->has_logits = true;
          logits_t.data() = s->logits;
        } catch (const std::exception& e) {
          finish(s, lock, SessionState::kFailed, e.what());
          return;
        }
        commit_layer(*s, layer_index, std::move(logits_t), layer_start);
        break;
      }
    }
  }
}

void NetworkServer::Impl::on_conv_terminal(const std::shared_ptr<NetworkSession::Shared>& s,
                                           ConvFuture fut, std::size_t layer_index,
                                           Clock::time_point submitted)
    FLASH_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(s->mu);
  if (s->state != SessionState::kRunning) return;
  switch (fut.state()) {
    case RequestState::kDone: {
      const NetworkProgram::Layer& layer = s->program->layers[layer_index];
      tensor::Tensor3 out{1, 1, 1};
      try {
        out = fut.result().reconstruct(s->program->t);
        tensor::apply_conv_postops(out, layer.op);
      } catch (const std::exception& e) {
        finish(s, lock, SessionState::kFailed, e.what());
        return;
      }
      ++s->conv_index;
      commit_layer(*s, layer_index, std::move(out), submitted);
      lock.unlock();
      advance(s);
      return;
    }
    case RequestState::kDeadlineExceeded:
      finish(s, lock, SessionState::kDeadlineExceeded,
             "layer " + std::to_string(layer_index) + " deadline exceeded in server");
      return;
    case RequestState::kRejected: {
      std::ostringstream msg;
      msg << "layer " << layer_index << " rejected; retry_after_s=" << fut.retry_after_s();
      finish(s, lock, SessionState::kRejected, msg.str());
      return;
    }
    default:
      finish(s, lock, SessionState::kFailed,
             "layer " + std::to_string(layer_index) + " " + to_string(fut.state()) +
                 (fut.state() == RequestState::kFailed ? ": " + fut.error() : std::string{}));
      return;
  }
}

void NetworkSession::wait() const {
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->cv.wait(lock, [&] { return shared_->state != SessionState::kRunning; });
}

bool NetworkSession::wait_for(std::chrono::nanoseconds d) const {
  std::unique_lock<std::mutex> lock(shared_->mu);
  return shared_->cv.wait_for(lock, d, [&] { return shared_->state != SessionState::kRunning; });
}

bool NetworkSession::done() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state != SessionState::kRunning;
}

SessionState NetworkSession::state() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state;
}

const tensor::Tensor3& NetworkSession::features() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  if (shared_->state != SessionState::kCompleted) {
    throw std::logic_error("NetworkSession::features: session not completed");
  }
  return shared_->activation;
}

const std::vector<tensor::i64>& NetworkSession::logits() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  if (shared_->state != SessionState::kCompleted || !shared_->has_logits) {
    throw std::logic_error("NetworkSession::logits: no logits available");
  }
  return shared_->logits;
}

bool NetworkSession::has_logits() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->has_logits;
}

std::string NetworkSession::error() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->error;
}

std::size_t NetworkSession::layers_completed() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->next_layer;
}

std::uint64_t NetworkSession::stream_base() const { return shared_->stream_base; }

std::vector<tensor::Tensor3> NetworkSession::layer_outputs() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->outputs;
}

NetworkServer::NetworkServer(ConvServer& server) : impl_(std::make_shared<Impl>(server)) {}

NetworkSession NetworkServer::start(std::shared_ptr<const NetworkProgram> program,
                                    tensor::Tensor3 input, SessionOptions options) {
  if (!program || program->layers.empty()) {
    throw std::invalid_argument("NetworkServer::start: empty program");
  }
  const tensor::Shape3 in{input.channels(), input.height(), input.width()};
  if (!(in == program->layers.front().in_shape)) {
    throw std::invalid_argument("NetworkServer::start: input shape mismatch");
  }

  auto shared = std::make_shared<NetworkSession::Shared>();
  shared->program = std::move(program);
  shared->impl = impl_;
  shared->stream_base = options.stream_base
                            ? *options.stream_base
                            : impl_->next_stream_base.fetch_add(1) * kSessionStreamStride;
  shared->start_time = now();
  if (options.deadline) {
    shared->deadline = options.deadline;
  } else if (options.budget) {
    shared->deadline = shared->start_time + *options.budget;
  }
  shared->record = options.record_layer_outputs;
  shared->activation = std::move(input);

  impl_->metrics.started.inc();
  impl_->metrics.active.add(1);
  {
    std::lock_guard<std::mutex> lock(impl_->sessions_mu);
    impl_->sessions.push_back(shared);
  }
  impl_->advance(shared);
  return NetworkSession(shared);
}

void NetworkServer::run_to_completion() {
  while (true) {
    // Manual mode: every dispatch completes a conv whose callback submits
    // the session's next layer synchronously, so an empty queue here means
    // either all sessions are terminal or dispatchers own the rest.
    while (impl_->server.dispatch_once()) {
    }
    std::shared_ptr<NetworkSession::Shared> active;
    {
      std::lock_guard<std::mutex> lock(impl_->sessions_mu);
      auto& sessions = impl_->sessions;
      for (std::size_t i = sessions.size(); i-- > 0;) {
        auto s = sessions[i].lock();
        bool terminal = true;
        if (s) {
          std::lock_guard<std::mutex> slock(s->mu);
          terminal = s->state != SessionState::kRunning;
        }
        if (!s || terminal) {
          sessions.erase(sessions.begin() + static_cast<std::ptrdiff_t>(i));
        } else if (!active) {
          active = std::move(s);
        }
      }
    }
    if (!active) return;
    // Threaded dispatchers may still be working this session; park briefly
    // on its cv, then re-check (and lend a hand to any refilled queue).
    std::unique_lock<std::mutex> lock(active->mu);
    active->cv.wait_for(lock, std::chrono::milliseconds(2),
                        [&] { return active->state != SessionState::kRunning; });
  }
}

const SessionMetrics& NetworkServer::session_metrics() const { return impl_->metrics; }

std::string NetworkServer::metrics_json() const { return impl_->metrics.to_json(); }

tensor::NetworkResult run_network_serial(const tensor::LayerStack& stack,
                                         const bfv::BfvContext& ctx, bfv::PolyMulBackend backend,
                                         const std::optional<fft::FxpFftConfig>& approx_config,
                                         std::uint64_t protocol_seed, const tensor::Tensor3& input,
                                         std::uint64_t stream_base,
                                         std::vector<tensor::Tensor3>* layer_outputs) {
  protocol::HConvProtocol protocol(ctx, backend, approx_config, protocol_seed, nullptr);
  protocol::ConvRunner runner(protocol);
  const std::uint64_t t = ctx.params().t;
  std::uint64_t conv_index = 0;
  const auto conv = [&](const tensor::Tensor3& x, const tensor::Tensor4& w, std::size_t stride,
                        std::size_t pad) {
    return runner.run(x, w, stride, pad, (stream_base + conv_index++) << 32).reconstruct(t);
  };
  return stack.forward(input, conv, layer_outputs);
}

}  // namespace flash::serve
