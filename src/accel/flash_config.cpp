#include "accel/flash_config.hpp"

namespace flash::accel {

FlashConfig FlashConfig::weight_transform_only() {
  FlashConfig c;
  c.fp_pes = 0;
  c.fp_mult_units = 0;
  c.fp_acc_units = 0;
  return c;
}

AreaPowerBreakdown flash_breakdown(const FlashConfig& config) {
  AreaPowerBreakdown b;
  // The approximate BUs are sized for the full 39-bit input stage; the DSE
  // narrows later stages, but the physical array must cover the widest
  // configured stage, so cost with the anchor width.
  const UnitCost abu = approx_bu(39, config.twiddle_k);
  const UnitCost fbu = fp_bu(config.fp_mantissa);
  const UnitCost fmul = complex_fp_mult(config.fp_mantissa);
  const UnitCost facc = fp_accumulator(config.fp_mantissa);

  const double um2_to_mm2 = 1e-6;
  const double mw_to_w = 1e-3;

  b.approx_bu_area = static_cast<double>(config.total_approx_bus()) * abu.area_um2 * um2_to_mm2;
  b.approx_bu_power = static_cast<double>(config.total_approx_bus()) * abu.power_mw * mw_to_w;
  b.fp_bu_area = static_cast<double>(config.total_fp_bus()) * fbu.area_um2 * um2_to_mm2;
  b.fp_bu_power = static_cast<double>(config.total_fp_bus()) * fbu.power_mw * mw_to_w;
  b.fp_mult_area = static_cast<double>(config.fp_mult_units) * fmul.area_um2 * um2_to_mm2;
  b.fp_mult_power = static_cast<double>(config.fp_mult_units) * fmul.power_mw * mw_to_w;
  b.fp_acc_area = static_cast<double>(config.fp_acc_units) * facc.area_um2 * um2_to_mm2;
  b.fp_acc_power = static_cast<double>(config.fp_acc_units) * facc.power_mw * mw_to_w;
  // Control, twiddle ROMs, buffers: a fixed fraction of the datapath,
  // consistent with the paper's totals (Fig. 12 "other").
  b.other_area = 0.08 * (b.approx_bu_area + b.fp_bu_area + b.fp_mult_area + b.fp_acc_area);
  b.other_power = 0.08 * (b.approx_bu_power + b.fp_bu_power + b.fp_mult_power + b.fp_acc_power);
  return b;
}

}  // namespace flash::accel
