// Published baseline accelerator specifications (paper Table III).
//
// HEAX/CHAM throughputs are reproduced by our BU-level model (BUs x f /
// butterflies-per-NTT); the ASIC rows (F1, BTS, ARK) use the paper's
// published normalized throughput, area and power directly.
#pragma once

#include <string>
#include <vector>

namespace flash::accel {

struct AcceleratorSpec {
  std::string name;
  std::size_t n = 0;             // native polynomial degree
  std::string technology;
  double freq_hz = 0.0;
  double norm_throughput = 0.0;  // transforms/s normalized (NTT N=4096 / FFT N=2048)
  double area_mm2 = 0.0;         // 0 = not reported (FPGA)
  double power_w = 0.0;          // 0 = not reported (FPGA)

  bool has_area_power() const { return area_mm2 > 0.0 && power_w > 0.0; }
  double area_efficiency() const { return area_mm2 > 0 ? norm_throughput / 1e6 / area_mm2 : 0.0; }
  double power_efficiency() const { return power_w > 0 ? norm_throughput / 1e6 / power_w : 0.0; }
};

/// The five baseline rows of Table III.
std::vector<AcceleratorSpec> table3_baselines();

/// BU-level throughput model for the FPGA baselines (validates the published
/// numbers): bus x f / ntt_butterflies(4096).
double fpga_ntt_norm_throughput(std::size_t bus, double freq_hz);

}  // namespace flash::accel
