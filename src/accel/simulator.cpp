#include "accel/simulator.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "hemath/bitrev.hpp"

namespace flash::accel {

std::uint64_t CycleSimulator::sparse_transform_cycles(const sparsefft::SparseFftPlan& plan) const {
  const std::size_t bus = config_.bus_per_approx_pe;
  std::uint64_t cycles = 0;
  for (int s = 0; s < plan.stages(); ++s) {
    // Copies are register moves handled by the interconnect; butterflies and
    // merge-multiplications occupy BU slots.
    std::uint64_t ops = 0;
    for (const auto& op : plan.stage(s)) ops += op.kind != sparsefft::OpKind::kCopy;
    cycles += (ops + bus - 1) / bus;
  }
  return std::max<std::uint64_t>(cycles, 1);
}

std::uint64_t CycleSimulator::dense_transform_cycles(std::size_t n, std::size_t bus_per_pe) const {
  const std::size_t m = n / 2;  // FFT size for ring degree n
  const std::uint64_t per_stage = (m / 2 + bus_per_pe - 1) / bus_per_pe;
  return per_stage * static_cast<std::uint64_t>(hemath::log2_exact(m));
}

std::uint64_t CycleSimulator::pointwise_cycles(std::size_t n) const {
  if (config_.fp_mult_units == 0) throw std::invalid_argument("pointwise_cycles: no FP MULs");
  return (n / 2 + config_.fp_mult_units - 1) / config_.fp_mult_units;
}

namespace {

enum class Kind : std::uint8_t { kWeight, kCipher, kPointwise, kInverse };

struct Task {
  Kind kind;
  std::uint64_t duration = 0;
  std::uint32_t remaining_deps = 0;
  std::vector<std::uint32_t> dependents;
};

}  // namespace

SimResult CycleSimulator::simulate_layer(const encoding::LayerTiling& tiling,
                                         const sparsefft::SparseFftPlan& weight_plan) const {
  // One spatial tile's task graph: accumulation groups = sub-convs x channel
  // tiles feed every output polynomial.
  const std::size_t groups = tiling.sub_convs * tiling.channel_tiles;
  const std::size_t outputs = tiling.weight_polys / std::max<std::uint64_t>(groups, 1);
  if (groups == 0 || outputs == 0) throw std::invalid_argument("simulate_layer: empty tiling");

  const std::uint64_t dw = sparse_transform_cycles(weight_plan);
  const std::uint64_t da = dense_transform_cycles(tiling.n, config_.bus_per_fp_pe);
  const std::uint64_t di = dense_transform_cycles(tiling.n, config_.bus_per_approx_pe);
  const std::uint64_t dp = pointwise_cycles(tiling.n);

  // Task ids: W[m*groups + t] | A[t*2 + e] | P[((m*groups + t)*2) + e] | I[m*2 + e]
  const std::uint32_t w0 = 0;
  const std::uint32_t a0 = static_cast<std::uint32_t>(outputs * groups);
  const std::uint32_t p0 = a0 + static_cast<std::uint32_t>(groups * 2);
  const std::uint32_t i0 = p0 + static_cast<std::uint32_t>(outputs * groups * 2);
  std::vector<Task> tasks(i0 + outputs * 2);

  for (std::size_t m = 0; m < outputs; ++m) {
    for (std::size_t t = 0; t < groups; ++t) {
      Task& w = tasks[w0 + m * groups + t];
      w.kind = Kind::kWeight;
      w.duration = dw;
      for (int e = 0; e < 2; ++e) {
        const std::uint32_t pid = p0 + static_cast<std::uint32_t>(((m * groups + t) * 2) + e);
        w.dependents.push_back(pid);
      }
    }
  }
  for (std::size_t t = 0; t < groups; ++t) {
    for (int e = 0; e < 2; ++e) {
      Task& a = tasks[a0 + t * 2 + e];
      a.kind = Kind::kCipher;
      a.duration = da;
      for (std::size_t m = 0; m < outputs; ++m) {
        a.dependents.push_back(p0 + static_cast<std::uint32_t>(((m * groups + t) * 2) + e));
      }
    }
  }
  for (std::size_t m = 0; m < outputs; ++m) {
    for (std::size_t t = 0; t < groups; ++t) {
      for (int e = 0; e < 2; ++e) {
        Task& p = tasks[p0 + ((m * groups + t) * 2) + e];
        p.kind = Kind::kPointwise;
        p.duration = dp;
        p.remaining_deps = 2;  // its W and its A
        p.dependents.push_back(i0 + static_cast<std::uint32_t>(m * 2 + e));
      }
    }
  }
  for (std::size_t m = 0; m < outputs; ++m) {
    for (int e = 0; e < 2; ++e) {
      Task& inv = tasks[i0 + m * 2 + e];
      inv.kind = Kind::kInverse;
      inv.duration = di;
      inv.remaining_deps = static_cast<std::uint32_t>(groups);
    }
  }

  // Greedy list scheduling over three resource pools.
  struct Pool {
    std::size_t free;
    std::queue<std::uint32_t> ready;
  };
  Pool approx{config_.approx_pes, {}};
  Pool fp{config_.fp_pes, {}};
  Pool pw{1, {}};
  auto pool_of = [&](Kind k) -> Pool& {
    switch (k) {
      case Kind::kWeight:
      case Kind::kInverse: return approx;
      case Kind::kCipher: return fp;
      case Kind::kPointwise: return pw;
    }
    throw std::logic_error("pool_of");
  };

  for (std::uint32_t id = 0; id < tasks.size(); ++id) {
    if (tasks[id].remaining_deps == 0) pool_of(tasks[id].kind).ready.push(id);
  }

  using Event = std::pair<std::uint64_t, std::uint32_t>;  // (finish time, task)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  SimResult result;
  std::uint64_t now = 0;

  auto dispatch = [&](Pool& pool) {
    while (pool.free > 0 && !pool.ready.empty()) {
      const std::uint32_t id = pool.ready.front();
      pool.ready.pop();
      --pool.free;
      running.emplace(now + tasks[id].duration, id);
      switch (tasks[id].kind) {
        case Kind::kWeight:
        case Kind::kInverse: result.weight_busy += tasks[id].duration; break;
        case Kind::kCipher: result.fp_busy += tasks[id].duration; break;
        case Kind::kPointwise: result.pointwise_busy += tasks[id].duration; break;
      }
    }
  };

  dispatch(approx);
  dispatch(fp);
  dispatch(pw);
  while (!running.empty()) {
    now = running.top().first;
    // Retire everything finishing now.
    while (!running.empty() && running.top().first == now) {
      const std::uint32_t id = running.top().second;
      running.pop();
      ++pool_of(tasks[id].kind).free;
      for (std::uint32_t dep : tasks[id].dependents) {
        if (--tasks[dep].remaining_deps == 0) pool_of(tasks[dep].kind).ready.push(dep);
      }
    }
    dispatch(approx);
    dispatch(fp);
    dispatch(pw);
  }

  result.cycles = now;
  if (now > 0) {
    result.weight_utilization = static_cast<double>(result.weight_busy) /
                                (static_cast<double>(now) * static_cast<double>(config_.approx_pes));
    result.fp_utilization = config_.fp_pes
                                ? static_cast<double>(result.fp_busy) /
                                      (static_cast<double>(now) * static_cast<double>(config_.fp_pes))
                                : 0.0;
  }
  return result;
}

}  // namespace flash::accel
