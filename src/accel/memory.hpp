// Weight-storage model (paper §I): pre-computing weight polynomials in the
// transform domain trades the NTT/FFT compute for enormous memory — "23 GB
// to store the entire weights in the NTT domain for a 4-bit ResNet-50,
// >1000x higher memory consumption". FLASH's on-the-fly sparse transform is
// the alternative. This model derives both sides from the tiling planner.
#pragma once

#include <cstdint>

#include "encoding/tiling.hpp"

namespace flash::accel {

struct WeightStorage {
  std::uint64_t raw_bytes = 0;          // quantized weights as integers
  std::uint64_t transformed_bytes = 0;  // every weight polynomial in the NTT domain
  double blowup() const {
    return raw_bytes ? static_cast<double>(transformed_bytes) / static_cast<double>(raw_bytes) : 0.0;
  }
};

/// Storage for a network's conv weights: raw (w_bits per weight) vs
/// NTT-domain (one dense degree-n polynomial of q_bits coefficients per
/// encoded weight polynomial, as a pre-computation cache would hold).
WeightStorage weight_storage(const std::vector<tensor::LayerConfig>& layers, std::size_t n,
                             int q_bits, int w_bits);

/// Twiddle-factor ROM sizes (paper §III-A: "twiddle factors of NTT vary with
/// different moduli, leading to storage or on-the-fly generation overhead",
/// while the FFT's "twiddle factors remain the same set").
struct TwiddleStorage {
  std::uint64_t ntt_bytes = 0;  // per-modulus psi power tables, fwd + inv
  std::uint64_t fft_bytes = 0;  // one CSD digit table for every modulus
  double ratio() const {
    return fft_bytes ? static_cast<double>(ntt_bytes) / static_cast<double>(fft_bytes) : 0.0;
  }
};

/// n: ring degree; moduli: RNS limb count the NTT design must serve; q_bits:
/// coefficient width of NTT twiddles; csd_k / csd_exp_bits: digits per FFT
/// twiddle component and bits per digit (exponent + sign).
TwiddleStorage twiddle_storage(std::size_t n, std::size_t moduli, int q_bits, int csd_k,
                               int csd_exp_bits);

}  // namespace flash::accel
