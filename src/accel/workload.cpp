#include "accel/workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "hemath/bitrev.hpp"

namespace flash::accel {

TransformWorkload TransformWorkload::from_tiling(const encoding::LayerTiling& tiling,
                                                 double weight_mult_fraction) {
  TransformWorkload w;
  w.n = tiling.n;
  w.weight_transforms = tiling.weight_transforms;
  w.cipher_transforms = tiling.cipher_transforms;
  w.inverse_transforms = tiling.inverse_transforms;
  w.pointwise_polys = tiling.pointwise_polys;
  w.weight_mult_fraction = weight_mult_fraction;
  return w;
}

TransformWorkload TransformWorkload::from_network(const std::vector<tensor::LayerConfig>& layers,
                                                  std::size_t n, double weight_mult_fraction) {
  TransformWorkload w;
  w.n = n;
  w.weight_mult_fraction = weight_mult_fraction;
  for (const auto& layer : layers) {
    const encoding::LayerTiling t = encoding::plan_layer(layer, n);
    w.weight_transforms += t.weight_transforms;
    w.cipher_transforms += t.cipher_transforms;
    w.inverse_transforms += t.inverse_transforms;
    w.pointwise_polys += t.pointwise_polys;
  }
  return w;
}

TransformWorkload& TransformWorkload::operator+=(const TransformWorkload& other) {
  if (n != other.n) throw std::invalid_argument("TransformWorkload: mixed ring degrees");
  // Weight fractions combine weighted by weight-transform count.
  const double total = static_cast<double>(weight_transforms + other.weight_transforms);
  if (total > 0) {
    weight_mult_fraction =
        (weight_mult_fraction * static_cast<double>(weight_transforms) +
         other.weight_mult_fraction * static_cast<double>(other.weight_transforms)) /
        total;
  }
  weight_transforms += other.weight_transforms;
  cipher_transforms += other.cipher_transforms;
  inverse_transforms += other.inverse_transforms;
  pointwise_polys += other.pointwise_polys;
  return *this;
}

std::uint64_t dense_fft_butterflies(std::size_t n) {
  const std::size_t m = n / 2;
  return static_cast<std::uint64_t>(m / 2) * static_cast<std::uint64_t>(hemath::log2_exact(m));
}

std::uint64_t dense_ntt_butterflies(std::size_t n) {
  return static_cast<std::uint64_t>(n / 2) * static_cast<std::uint64_t>(hemath::log2_exact(n));
}

namespace {

UnitCost weight_bu_cost(const FlashConfig& config, WeightPath path) {
  switch (path) {
    case WeightPath::kFpDense:
    case WeightPath::kFpSparse:
      return fp_bu(config.fp_mantissa);
    case WeightPath::kFxpDense:
      return plain_fxp_bu(27);
    case WeightPath::kApproxDense:
    case WeightPath::kApproxSparse:
      return approx_bu(config.approx_width, config.twiddle_k);
  }
  throw std::logic_error("weight_bu_cost: unreachable");
}

bool is_sparse(WeightPath path) {
  return path == WeightPath::kFpSparse || path == WeightPath::kApproxSparse;
}

}  // namespace

double weight_transform_energy_j(const FlashConfig& config, const TransformWorkload& w,
                                 WeightPath path) {
  const double frac = is_sparse(path) ? w.weight_mult_fraction : 1.0;
  const double butterflies =
      static_cast<double>(w.weight_transforms) * static_cast<double>(dense_fft_butterflies(w.n)) * frac;
  const UnitCost bu = weight_bu_cost(config, path);
  return butterflies * bu.energy_pj(config.freq_hz) * 1e-12;
}

FlashRunBreakdown flash_run_breakdown(const FlashConfig& config, const TransformWorkload& w,
                                      WeightPath path) {
  const double frac = is_sparse(path) ? w.weight_mult_fraction : 1.0;
  const double bflies_per_fft = static_cast<double>(dense_fft_butterflies(w.n));
  FlashRunBreakdown b;

  // Approximate array: sparse weight forwards plus dense inverse transforms
  // (inverse inputs are dense spectra; the FXP arithmetic tolerance is the
  // same kernel-level robustness argument).
  const double weight_ops = static_cast<double>(w.weight_transforms) * bflies_per_fft * frac +
                            static_cast<double>(w.inverse_transforms) * bflies_per_fft;
  const std::size_t weight_units = config.total_approx_bus();
  if (weight_ops > 0 && weight_units == 0) throw std::invalid_argument("flash_run: no weight BUs");
  b.weight_array_s =
      weight_units ? weight_ops / (static_cast<double>(weight_units) * config.freq_hz) : 0.0;
  b.weight_array_j = weight_ops * weight_bu_cost(config, path).energy_pj(config.freq_hz) * 1e-12;

  // FP transform array: ciphertext forward transforms.
  const double fp_ops = static_cast<double>(w.cipher_transforms) * bflies_per_fft;
  const std::size_t fp_units = config.total_fp_bus();
  if (fp_ops > 0 && fp_units == 0) throw std::invalid_argument("flash_run: no FP BUs");
  b.fp_array_s = fp_units ? fp_ops / (static_cast<double>(fp_units) * config.freq_hz) : 0.0;
  b.fp_array_j = fp_ops * fp_bu(config.fp_mantissa).energy_pj(config.freq_hz) * 1e-12;

  // Point-wise multiply + accumulate array.
  const double pw_ops = static_cast<double>(w.pointwise_polys) * static_cast<double>(w.n / 2);
  if (pw_ops > 0 && config.fp_mult_units == 0) throw std::invalid_argument("flash_run: no FP MULs");
  b.pointwise_s =
      config.fp_mult_units ? pw_ops / (static_cast<double>(config.fp_mult_units) * config.freq_hz) : 0.0;
  b.pointwise_j = pw_ops *
                  (complex_fp_mult(config.fp_mantissa).energy_pj(config.freq_hz) +
                   fp_accumulator(config.fp_mantissa).energy_pj(config.freq_hz)) *
                  1e-12;
  return b;
}

LatencyEnergy flash_run(const FlashConfig& config, const TransformWorkload& w, WeightPath path) {
  const FlashRunBreakdown b = flash_run_breakdown(config, w, path);
  return {b.seconds(), b.joules()};
}

LatencyEnergy cham_run(const TransformWorkload& w) {
  constexpr double kFreq = 300e6;
  constexpr std::size_t kBus = 240;
  const double transform_ops =
      static_cast<double>(w.weight_transforms + w.cipher_transforms + w.inverse_transforms) *
      static_cast<double>(dense_ntt_butterflies(w.n));
  const double pw_ops = static_cast<double>(w.pointwise_polys) * static_cast<double>(w.n);
  const double total_ops = transform_ops + pw_ops;  // shared modular multipliers
  LatencyEnergy out;
  out.seconds = total_ops / (static_cast<double>(kBus) * kFreq);
  out.joules = total_ops * modular_bu_cham().energy_pj(kFreq) * 1e-12;
  return out;
}

LatencyEnergy f1_run(const TransformWorkload& w) {
  // Published Table III figures: 583.33 M normalized NTT/s at 76.80 W.
  constexpr double kNormThroughput = 583.33e6;
  constexpr double kPower = 76.80;
  const double transforms =
      static_cast<double>(w.weight_transforms + w.cipher_transforms + w.inverse_transforms);
  // Point-wise modular products on the same datapath, expressed in
  // NTT-equivalents (n multiplications vs (n/2)log2(n) per transform).
  const double pw_equiv = static_cast<double>(w.pointwise_polys) * static_cast<double>(w.n) /
                          static_cast<double>(dense_ntt_butterflies(w.n));
  // Normalize our ring degree to the N=4096 NTT reference.
  const double scale = static_cast<double>(dense_ntt_butterflies(w.n)) /
                       static_cast<double>(dense_ntt_butterflies(4096));
  LatencyEnergy out;
  out.seconds = (transforms + pw_equiv) * scale / kNormThroughput;
  out.joules = out.seconds * kPower;
  return out;
}

double flash_norm_throughput(const FlashConfig& config, double weight_mult_fraction,
                             bool weight_only) {
  const double bflies = static_cast<double>(dense_fft_butterflies(4096));  // FFT size 2048 reference
  const double weight_rate = static_cast<double>(config.total_approx_bus()) * config.freq_hz /
                             (bflies * weight_mult_fraction);
  if (weight_only) return weight_rate;
  const double fp_rate = static_cast<double>(config.total_fp_bus()) * config.freq_hz / bflies;
  return weight_rate + fp_rate;
}

}  // namespace flash::accel
