// Cycle-level simulation of the FLASH pipeline (validates the analytic
// throughput model in workload.hpp from below).
//
// The analytic model divides total butterflies by array width; this
// simulator schedules the actual task graph of one layer's HConv:
//
//   W(m, tile)   sparse weight transform     -> one approximate PE (4 BUs)
//   A(tile, e)   ciphertext forward (dense)  -> one FP PE (4 BUs)
//   P(m, tile,e) point-wise product          -> the FP multiplier array
//   I(m, e)      inverse transform (dense)   -> one approximate PE
//
// with the real dependencies (P needs W and A; I needs every P of its output
// polynomial) and per-stage butterfly parallelism inside each transform
// (stage s of a DIT FFT cannot start before stage s-1 finishes; a PE retires
// at most `bus_per_pe` butterflies per cycle). Scheduling is greedy
// list-scheduling over resource pools, which is what a hardware sequencer
// with a ready queue does.
#pragma once

#include "accel/workload.hpp"
#include "sparsefft/planner.hpp"

namespace flash::accel {

struct SimResult {
  std::uint64_t cycles = 0;             // makespan of the layer
  std::uint64_t weight_busy = 0;        // busy PE-cycles on the approx array
  std::uint64_t fp_busy = 0;            // busy PE-cycles on the FP array
  std::uint64_t pointwise_busy = 0;     // busy cycles of the mult array
  double weight_utilization = 0.0;      // busy / (cycles * PEs)
  double fp_utilization = 0.0;
  double seconds(double freq_hz) const { return static_cast<double>(cycles) / freq_hz; }
};

class CycleSimulator {
 public:
  explicit CycleSimulator(const FlashConfig& config) : config_(config) {}

  /// Cycles one approximate PE (bus_per_pe BUs) needs for a sparse weight
  /// transform: per-stage scheduled ops with a barrier between stages.
  std::uint64_t sparse_transform_cycles(const sparsefft::SparseFftPlan& plan) const;

  /// Cycles for a dense transform on one PE of the given width.
  std::uint64_t dense_transform_cycles(std::size_t n, std::size_t bus_per_pe) const;

  /// Cycles the multiplier array needs for one polynomial's point-wise pass.
  std::uint64_t pointwise_cycles(std::size_t n) const;

  /// Simulate one layer's full HConv task graph.
  SimResult simulate_layer(const encoding::LayerTiling& tiling,
                           const sparsefft::SparseFftPlan& weight_plan) const;

  const FlashConfig& config() const { return config_; }

 private:
  FlashConfig config_;
};

}  // namespace flash::accel
