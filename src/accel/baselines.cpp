#include "accel/baselines.hpp"

#include "accel/workload.hpp"

namespace flash::accel {

std::vector<AcceleratorSpec> table3_baselines() {
  return {
      {"HEAX", std::size_t{1} << 12, "FPGA", 300e6, 1.95e6, 0.0, 0.0},
      {"CHAM", std::size_t{1} << 12, "FPGA", 300e6, 2.93e6, 0.0, 0.0},
      {"F1", std::size_t{1} << 14, "14nm/12nm", 1e9, 583.33e6, 36.32, 76.80},
      {"BTS", std::size_t{1} << 17, "7nm", 1.2e9, 200.00e6, 19.45, 24.92},
      {"ARK", std::size_t{1} << 16, "7nm", 1e9, 333.33e6, 34.90, 39.60},
  };
}

double fpga_ntt_norm_throughput(std::size_t bus, double freq_hz) {
  return static_cast<double>(bus) * freq_hz / static_cast<double>(dense_ntt_butterflies(4096));
}

}  // namespace flash::accel
