// Per-unit hardware cost models (28nm @ 1GHz), calibrated to the paper's
// Table II synthesis results.
//
// This is the substitution for Synopsys DC + PrimeTime PX (see DESIGN.md):
// the paper publishes per-multiplier area/power at the exact design points it
// uses; we anchor on those numbers and scale with first-order architectural
// laws (a k-term shift-add array is linear in k and in operand width; an
// array multiplier is quadratic in width). All FLASH-vs-baseline ratios are
// then driven by operation counts from the functional simulator.
#pragma once

#include <cstddef>

namespace flash::accel {

struct UnitCost {
  double area_um2 = 0.0;
  double power_mw = 0.0;

  UnitCost operator*(double s) const { return {area_um2 * s, power_mw * s}; }
  UnitCost operator+(const UnitCost& o) const { return {area_um2 + o.area_um2, power_mw + o.power_mw}; }

  /// Energy per clocked operation at frequency f (picojoules).
  double energy_pj(double freq_hz) const { return power_mw * 1e9 / freq_hz; }
};

/// F1-style modular multiplier, 32-bit, special modulus (Table II row 1).
UnitCost modular_mult_f1();

/// CHAM modular multiplier, 35/39-bit, 3-nonzero-bit moduli (Table II row 2).
UnitCost modular_mult_cham();

/// Complex floating-point multiplier with the given mantissa width; anchored
/// at (8 exp + 1 sign + 39 mantissa) = 11744 um^2 / 8.26 mW. Mantissa array
/// scales ~quadratically, exponent/normalization overhead is constant.
UnitCost complex_fp_mult(int mantissa_bits);

/// FLASH approximate complex fixed-point multiplier: four k-term shift-add
/// arrays (Fig. 9). Anchored at width 39, k = 5 -> 3211 um^2 / 1.11 mW;
/// linear in both k and operand width.
UnitCost approx_fxp_mult(int width_bits, int k);

/// Plain (non-CSD) complex fixed-point multiplier of the given width —
/// the "FXP FFT" ablation arm: array multiplier, quadratic in width, no
/// exponent logic.
UnitCost plain_fxp_mult(int width_bits);

/// Butterfly units: one complex multiplier + two complex adders (adder cost
/// folded in at ~6% of the anchor multiplier, consistent with the Table II /
/// Fig. 12 totals).
UnitCost approx_bu(int width_bits, int k);
UnitCost fp_bu(int mantissa_bits);
UnitCost plain_fxp_bu(int width_bits);
UnitCost modular_bu_cham();
UnitCost modular_bu_f1();

/// FP accumulator (adder) unit for the point-wise accumulation stage.
UnitCost fp_accumulator(int mantissa_bits);

}  // namespace flash::accel
