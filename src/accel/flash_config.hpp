// FLASH architecture configuration and area/power roll-up (paper Fig. 6 and
// Fig. 12).
//
// The accelerator instantiates 60 approximate FFT PEs (4 BUs each) for
// weight transforms — the same BU count as the CHAM baseline — plus 4 FP PEs
// for ciphertext transforms, an FP multiplier array for the point-wise
// products, and FP accumulators for the channel-tile accumulation.
#pragma once

#include "accel/unit_costs.hpp"

namespace flash::accel {

struct FlashConfig {
  std::size_t approx_pes = 60;
  std::size_t bus_per_approx_pe = 4;
  std::size_t fp_pes = 4;
  std::size_t bus_per_fp_pe = 4;
  std::size_t fp_mult_units = 240;  // point-wise multiplier array
  std::size_t fp_acc_units = 240;
  double freq_hz = 1e9;

  int approx_width = 39;   // physical BU width (Table II anchor); the DSE can
                           // narrow the active data path below this
  int twiddle_k = 5;       // CSD digits per twiddle component
  int fp_mantissa = 39;    // FP path mantissa

  std::size_t total_approx_bus() const { return approx_pes * bus_per_approx_pe; }
  std::size_t total_fp_bus() const { return fp_pes * bus_per_fp_pe; }

  static FlashConfig paper_default() { return {}; }
  /// The weight-transform-only subset reported in Table III's first FLASH row.
  static FlashConfig weight_transform_only();
};

/// Component-wise area (mm^2) and power (W) roll-up — the Fig. 12 breakdown.
struct AreaPowerBreakdown {
  double approx_bu_area = 0, fp_bu_area = 0, fp_mult_area = 0, fp_acc_area = 0, other_area = 0;
  double approx_bu_power = 0, fp_bu_power = 0, fp_mult_power = 0, fp_acc_power = 0, other_power = 0;

  double total_area() const {
    return approx_bu_area + fp_bu_area + fp_mult_area + fp_acc_area + other_area;
  }
  double total_power() const {
    return approx_bu_power + fp_bu_power + fp_mult_power + fp_acc_power + other_power;
  }
};

AreaPowerBreakdown flash_breakdown(const FlashConfig& config);

}  // namespace flash::accel
