// Mapping HConv transform workloads onto accelerator configurations:
// cycle-accurate-at-the-butterfly-level throughput, latency and energy.
//
// A transform workload is the operation inventory produced by the encoding
// tiling planner (encoding/tiling.hpp). Costing rules:
//   * one BU retires one butterfly per cycle;
//   * an M-point FFT is (M/2)*log2(M) butterflies, an N-point NTT is
//     (N/2)*log2(N);
//   * the sparse weight dataflow executes only `weight_mult_fraction` of the
//     dense butterflies (measured by the sparsefft planner for the layer's
//     actual pattern);
//   * point-wise products run on the FP multiplier array, one complex
//     product per unit per cycle;
//   * the approximate array, the FP transform array and the point-wise array
//     pipeline against each other, so latency is the max of the three;
//     energy is the sum of active-op energies.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "accel/flash_config.hpp"
#include "encoding/tiling.hpp"

namespace flash::accel {

struct TransformWorkload {
  std::size_t n = 4096;  // ring degree (FFT size n/2, NTT size n)
  std::uint64_t weight_transforms = 0;
  std::uint64_t cipher_transforms = 0;
  std::uint64_t inverse_transforms = 0;
  std::uint64_t pointwise_polys = 0;  // ct-element x weight spectral products
  /// Fraction of dense FFT butterflies the sparse dataflow actually executes
  /// for weight transforms (1.0 = dense).
  double weight_mult_fraction = 1.0;

  static TransformWorkload from_tiling(const encoding::LayerTiling& tiling,
                                       double weight_mult_fraction);
  static TransformWorkload from_network(const std::vector<tensor::LayerConfig>& layers,
                                        std::size_t n, double weight_mult_fraction);
  TransformWorkload& operator+=(const TransformWorkload& other);
};

std::uint64_t dense_fft_butterflies(std::size_t n);  // negacyclic via n/2-point FFT
std::uint64_t dense_ntt_butterflies(std::size_t n);

struct LatencyEnergy {
  double seconds = 0.0;
  double joules = 0.0;
};

/// Per-array timing of one FLASH run. Mapping (validated against the paper's
/// Table III/IV arithmetic): the 240-BU approximate array executes the sparse
/// weight transforms AND the dense inverse transforms (both tolerate FXP
/// arithmetic); the FP BUs execute ciphertext forward transforms; the FP
/// multiplier array executes point-wise products. `transform_seconds` is the
/// paper's latency metric (transform arrays only — the paper explicitly
/// defers the point-wise bottleneck to future work); `seconds` also covers
/// the point-wise array.
struct FlashRunBreakdown {
  double weight_array_s = 0.0;  // approx BUs: sparse weight fwd + dense inverse
  double fp_array_s = 0.0;      // FP BUs: ciphertext forward transforms
  double pointwise_s = 0.0;     // FP multiplier array
  double weight_array_j = 0.0;
  double fp_array_j = 0.0;
  double pointwise_j = 0.0;

  double transform_seconds() const { return std::max(weight_array_s, fp_array_s); }
  double seconds() const { return std::max(transform_seconds(), pointwise_s); }
  double joules() const { return weight_array_j + fp_array_j + pointwise_j; }
};

/// Datapath selection for the weight-transform array (the ablation knob of
/// Fig. 11(d)(e)).
enum class WeightPath {
  kFpDense,        // "FFT(a)": FP BUs, dense dataflow
  kFxpDense,       // "FXP FFT": plain 27-bit fixed point, dense dataflow
  kFpSparse,       // sparse dataflow on FP BUs (sparse-only ablation)
  kApproxDense,    // approximate BUs (CSD k), dense dataflow (approx-only)
  kApproxSparse,   // FLASH: sparse dataflow on approximate BUs
};

/// Run a workload on a FLASH-style configuration with the chosen weight path.
LatencyEnergy flash_run(const FlashConfig& config, const TransformWorkload& w, WeightPath path);

/// Same run with per-array timing/energy detail.
FlashRunBreakdown flash_run_breakdown(const FlashConfig& config, const TransformWorkload& w,
                                      WeightPath path);

/// Weight-transform-only energy (the Fig. 11(d)(e) bars).
double weight_transform_energy_j(const FlashConfig& config, const TransformWorkload& w,
                                 WeightPath path);

/// CHAM baseline: 240 modular BUs @ 300 MHz (FPGA), dense NTT for all
/// transforms; point-wise products on the same modular multipliers.
LatencyEnergy cham_run(const TransformWorkload& w);

/// F1 baseline: published throughput/power (Table III), dense NTT.
LatencyEnergy f1_run(const TransformWorkload& w);

/// Normalized throughput in "transforms per second" (Table III convention:
/// NTT normalized to N = 4096, FFT to N = 2048).
double flash_norm_throughput(const FlashConfig& config, double weight_mult_fraction,
                             bool weight_only);

}  // namespace flash::accel
