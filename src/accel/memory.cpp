#include "accel/memory.hpp"

namespace flash::accel {

WeightStorage weight_storage(const std::vector<tensor::LayerConfig>& layers, std::size_t n,
                             int q_bits, int w_bits) {
  WeightStorage s;
  for (const auto& layer : layers) {
    const std::uint64_t weights = static_cast<std::uint64_t>(layer.out_c) * layer.in_c *
                                  layer.kernel * layer.kernel;
    s.raw_bytes += weights * static_cast<std::uint64_t>(w_bits) / 8;
    const encoding::LayerTiling t = encoding::plan_layer(layer, n);
    s.transformed_bytes += t.weight_polys * static_cast<std::uint64_t>(n) *
                           static_cast<std::uint64_t>(q_bits) / 8;
  }
  return s;
}

TwiddleStorage twiddle_storage(std::size_t n, std::size_t moduli, int q_bits, int csd_k,
                               int csd_exp_bits) {
  TwiddleStorage s;
  // NTT: psi^br(i) and psi^-br(i), n entries each, per modulus.
  s.ntt_bytes = static_cast<std::uint64_t>(moduli) * 2 * n *
                (static_cast<std::uint64_t>(q_bits) + 7) / 8;
  // FFT: one table of n/4 quantized twiddles (the FFT size is n/2 and its
  // twiddle table n/4), two CSD components of csd_k digits each; the same
  // table serves every modulus. Inverse twiddles are conjugates (free).
  const std::uint64_t digit_bits = static_cast<std::uint64_t>(csd_k) * csd_exp_bits;
  s.fft_bytes = (n / 4) * 2 * (digit_bits + 7) / 8;
  return s;
}

}  // namespace flash::accel
