#include "accel/unit_costs.hpp"

namespace flash::accel {

namespace {
// Table II anchor points (28nm, 1GHz).
constexpr UnitCost kF1Modular{1817.0, 4.10};
constexpr UnitCost kChamModular{3517.0, 3.79};
constexpr UnitCost kComplexFp39{11744.0, 8.26};
constexpr UnitCost kApproxFxp39k5{3211.0, 1.11};
// Fraction of the complex-FP anchor attributable to exponent handling and
// normalization rather than the mantissa array.
constexpr double kFpExponentOverhead = 0.18;
// Complex adder pair folded into a BU, relative to its multiplier anchor.
constexpr double kBuAdderOverhead = 0.06;
}  // namespace

UnitCost modular_mult_f1() { return kF1Modular; }
UnitCost modular_mult_cham() { return kChamModular; }

UnitCost complex_fp_mult(int mantissa_bits) {
  const double s = static_cast<double>(mantissa_bits) / 39.0;
  return kComplexFp39 * (kFpExponentOverhead + (1.0 - kFpExponentOverhead) * s * s);
}

UnitCost approx_fxp_mult(int width_bits, int k) {
  const double s = (static_cast<double>(width_bits) / 39.0) * (static_cast<double>(k) / 5.0);
  return kApproxFxp39k5 * s;
}

UnitCost plain_fxp_mult(int width_bits) {
  // A full array multiplier without exponent logic: the mantissa-array part
  // of the FP anchor, quadratic in width.
  const double s = static_cast<double>(width_bits) / 39.0;
  return kComplexFp39 * ((1.0 - kFpExponentOverhead) * s * s);
}

UnitCost approx_bu(int width_bits, int k) {
  return approx_fxp_mult(width_bits, k) + kApproxFxp39k5 * kBuAdderOverhead;
}

UnitCost fp_bu(int mantissa_bits) {
  return complex_fp_mult(mantissa_bits) + kComplexFp39 * kBuAdderOverhead;
}

UnitCost plain_fxp_bu(int width_bits) {
  return plain_fxp_mult(width_bits) + kComplexFp39 * kBuAdderOverhead;
}

UnitCost modular_bu_cham() { return kChamModular * (1.0 + kBuAdderOverhead); }
UnitCost modular_bu_f1() { return kF1Modular * (1.0 + kBuAdderOverhead); }

UnitCost fp_accumulator(int mantissa_bits) {
  const double s = static_cast<double>(mantissa_bits) / 39.0;
  // An FP adder is roughly 1/5 of the FP multiplier at the same width.
  return kComplexFp39 * (0.2 * (kFpExponentOverhead + (1.0 - kFpExponentOverhead) * s));
}

}  // namespace flash::accel
