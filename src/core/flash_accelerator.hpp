// FLASH: the paper's contribution as a single public API.
//
// A FlashAccelerator owns a BFV instance and a hardware configuration. For
// any convolutional layer it can:
//   * plan   — tile the layer onto polynomials, build the sparse butterfly
//              dataflow for its encoded weight pattern, and estimate
//              latency/energy on FLASH and on the baselines;
//   * run    — execute the full hybrid HE/2PC HConv functionally, with the
//              server's PolyMul on the approximate+sparse FFT datapath;
//   * tune   — run the DSE to pick per-stage bit-widths for the layer.
#pragma once

#include <optional>

#include "accel/baselines.hpp"
#include "accel/workload.hpp"
#include "bfv/evaluator.hpp"
#include "dse/optimizer.hpp"
#include "encoding/tiling.hpp"
#include "protocol/hconv_protocol.hpp"
#include "sparsefft/executor.hpp"
#include "tensor/network.hpp"

namespace flash::core {

struct FlashOptions {
  accel::FlashConfig hardware = accel::FlashConfig::paper_default();
  bfv::PolyMulBackend backend = bfv::PolyMulBackend::kApproxFft;
  /// Approximate-FFT configuration for functional execution. If empty, a
  /// uniform 27-bit (k = 5) configuration is derived per ring degree.
  std::optional<fft::FxpFftConfig> approx_config;
  std::uint64_t seed = 20250307;
};

/// Everything known about one layer's HConv before running it.
struct LayerPlan {
  tensor::LayerConfig layer;
  encoding::LayerTiling tiling;
  /// Fraction of dense FFT butterfly multiplications the sparse dataflow
  /// executes for this layer's encoded weight pattern.
  double weight_mult_fraction = 1.0;
  accel::TransformWorkload workload;
  accel::LatencyEnergy flash;          // approx + sparse (the FLASH datapath)
  accel::LatencyEnergy cham;           // CHAM baseline
  accel::LatencyEnergy f1;             // F1 baseline
};

/// Aggregate over a network's conv layers.
struct NetworkEstimate {
  accel::TransformWorkload workload;
  accel::FlashRunBreakdown flash_detail;
  accel::LatencyEnergy flash;  // array-bound latency incl. the point-wise array
  accel::LatencyEnergy cham;
  accel::LatencyEnergy f1;
  /// Table IV methodology: transform-array latency (the paper defers the
  /// point-wise bottleneck to future work).
  double flash_transform_seconds() const { return flash_detail.transform_seconds(); }
  double speedup_vs_cham() const { return cham.seconds / flash_transform_seconds(); }
  double energy_reduction_vs_f1() const { return 1.0 - flash.joules / f1.joules; }
};

class FlashAccelerator {
 public:
  FlashAccelerator(bfv::BfvParams params, FlashOptions options = {});

  const bfv::BfvContext& context() const { return ctx_; }
  const FlashOptions& options() const { return options_; }
  const fft::FxpFftConfig& approx_config() const { return approx_config_; }

  /// Sparse-dataflow multiplication fraction for a geometry's weight pattern
  /// (non-trivial complex multiplications, sparse / dense).
  double sparse_mult_fraction(const encoding::ConvGeometry& geometry) const;

  LayerPlan plan_layer(const tensor::LayerConfig& layer) const;
  NetworkEstimate estimate_network(const std::vector<tensor::LayerConfig>& layers) const;

  /// Functional hybrid HE/2PC convolution on this accelerator's datapath.
  /// Input must be pre-padded; stride 1.
  protocol::HConvResult run_hconv(const tensor::Tensor3& x, const tensor::Tensor4& weights);

  /// A stride-1 'same' convolution executor that routes every convolution
  /// through the HE/2PC protocol — plug into tensor::SmallQuantNet to run a
  /// whole network privately.
  tensor::ConvFn hconv_executor();

  /// Run the design-space exploration for a layer's weight statistics and
  /// return all evaluated points (Fig. 11(b)(c)).
  std::vector<dse::EvaluatedPoint> explore_layer(const tensor::LayerConfig& layer,
                                                 const dse::DseOptions& options) const;

  /// Full per-layer tuning (paper Fig. 10): explore the space and return the
  /// cheapest design point whose predicted error variance stays below the
  /// layer's T_err, as an executable FXP FFT configuration.
  /// tolerable_output_error: conv-output perturbation the downstream
  /// robustness absorbs (e.g. half the requantization LSBs); activation_rms:
  /// typical activation magnitude of the layer.
  struct TunedConfig {
    dse::EvaluatedPoint point;
    fft::FxpFftConfig config;
    double threshold = 0.0;
  };
  TunedConfig tune_layer(const tensor::LayerConfig& layer, double tolerable_output_error,
                         double activation_rms, std::size_t evaluations = 400) const;

 private:
  bfv::BfvContext ctx_;
  FlashOptions options_;
  fft::FxpFftConfig approx_config_;
  std::optional<protocol::HConvProtocol> proto_;
};

/// Uniform default approximate configuration: 27-bit data path, k = 5 CSD
/// twiddles (the paper's headline operating point, which assumes
/// approximation-aware training downstream: it perturbs conv outputs by a
/// few LSBs that requantization absorbs).
fft::FxpFftConfig default_approx_config(std::size_t n, std::uint64_t t);

/// Conservative configuration: 39-bit data path, k = 18 CSD twiddles — the
/// paper's "accuracy degradation within 1%, no retraining" operating point.
/// Errors are far below one message LSB, so HConv results match the exact
/// backends bit-for-bit.
fft::FxpFftConfig high_accuracy_approx_config(std::size_t n, std::uint64_t t);

}  // namespace flash::core
