#include "core/flash_accelerator.hpp"

#include <algorithm>

#include "encoding/encoder.hpp"
#include "protocol/conv_runner.hpp"

namespace flash::core {

namespace {
fft::FxpFftConfig uniform_approx_config(std::size_t n, std::uint64_t t, int width, int k) {
  dse::DesignSpace space(n / 2, dse::SpaceBounds{8, 48, 2, 20});
  dse::DesignPoint p;
  p.stage_widths.assign(static_cast<std::size_t>(space.stages()), width);
  p.twiddle_k = k;
  // Weight coefficients are low-bit quantized values; 64 covers up to 7-bit
  // weights with margin (t bounds them in any case).
  const double max_abs = std::min<double>(static_cast<double>(t / 2), 64.0);
  return space.to_config(p, max_abs);
}
}  // namespace

fft::FxpFftConfig default_approx_config(std::size_t n, std::uint64_t t) {
  return uniform_approx_config(n, t, 27, 5);
}

fft::FxpFftConfig high_accuracy_approx_config(std::size_t n, std::uint64_t t) {
  // Reproduction note (see DESIGN.md): a faithful BFV implementation wraps
  // c1*s mod q during decryption, which amplifies any weight-spectrum error
  // delta by ~ t * sqrt(N) * ||wrap quotient||. Keeping the decrypted result
  // bit-exact therefore needs the spectrum accurate to ~2^-26, i.e. a wider
  // word than the paper's no-retraining point (39-bit, k=18). 48-bit data
  // with k=20 twiddles achieves exactness (the "full equivalence with the
  // 39-bit NTT" regime of paper §III-A).
  return uniform_approx_config(n, t, 48, 20);
}

FlashAccelerator::FlashAccelerator(bfv::BfvParams params, FlashOptions options)
    : ctx_(params), options_(std::move(options)) {
  approx_config_ = options_.approx_config
                       ? *options_.approx_config
                       : default_approx_config(params.n, params.t);
}

double FlashAccelerator::sparse_mult_fraction(const encoding::ConvGeometry& geometry) const {
  return encoding::sparse_weight_fraction(geometry);
}

LayerPlan FlashAccelerator::plan_layer(const tensor::LayerConfig& layer) const {
  const auto& p = ctx_.params();
  LayerPlan plan;
  plan.layer = layer;
  plan.tiling = encoding::plan_layer(layer, p.n);
  plan.weight_mult_fraction = plan.tiling.weight_mult_fraction;
  plan.workload = accel::TransformWorkload::from_tiling(plan.tiling, plan.weight_mult_fraction);
  plan.flash = accel::flash_run(options_.hardware, plan.workload, accel::WeightPath::kApproxSparse);
  plan.cham = accel::cham_run(plan.workload);
  plan.f1 = accel::f1_run(plan.workload);
  return plan;
}

NetworkEstimate FlashAccelerator::estimate_network(
    const std::vector<tensor::LayerConfig>& layers) const {
  NetworkEstimate est;
  est.workload.n = ctx_.params().n;
  bool first = true;
  for (const auto& layer : layers) {
    const LayerPlan plan = plan_layer(layer);
    if (first) {
      est.workload = plan.workload;
      first = false;
    } else {
      est.workload += plan.workload;
    }
  }
  // The three FLASH arrays stream the whole network, so the latency bound is
  // the busiest array over the aggregate workload (not the sum of per-layer
  // maxima); the serial baselines are linear either way.
  est.flash_detail =
      accel::flash_run_breakdown(options_.hardware, est.workload, accel::WeightPath::kApproxSparse);
  est.flash = {est.flash_detail.seconds(), est.flash_detail.joules()};
  est.cham = accel::cham_run(est.workload);
  est.f1 = accel::f1_run(est.workload);
  return est;
}

protocol::HConvResult FlashAccelerator::run_hconv(const tensor::Tensor3& x,
                                                  const tensor::Tensor4& weights) {
  if (!proto_) {
    std::optional<fft::FxpFftConfig> cfg;
    if (options_.backend == bfv::PolyMulBackend::kApproxFft) cfg = approx_config_;
    proto_.emplace(ctx_, options_.backend, cfg, options_.seed);
  }
  return proto_->run(x, weights);
}

tensor::ConvFn FlashAccelerator::hconv_executor() {
  return [this](const tensor::Tensor3& x, const tensor::Tensor4& w) {
    if (!proto_) {
      std::optional<fft::FxpFftConfig> cfg;
      if (options_.backend == bfv::PolyMulBackend::kApproxFft) cfg = approx_config_;
      proto_.emplace(ctx_, options_.backend, cfg, options_.seed);
    }
    // ConvRunner handles 'same' padding, stride phases and spatial tiling.
    protocol::ConvRunner runner(*proto_);
    return runner.run(x, w, 1, w.kernel_h() / 2).reconstruct(ctx_.params().t);
  };
}

std::vector<dse::EvaluatedPoint> FlashAccelerator::explore_layer(
    const tensor::LayerConfig& layer, const dse::DseOptions& options) const {
  const auto& p = ctx_.params();
  const encoding::LayerTiling tiling = encoding::plan_layer(layer, p.n);
  const dse::SpaceBounds bounds;
  dse::DesignSpace space(p.n / 2, bounds);
  dse::ErrorModel error = dse::ErrorModel::from_weight_stats(p.n, tiling.weight_nnz, 8.0);
  dse::CostModel cost(p.n / 2, bounds);
  dse::DseExplorer explorer(std::move(space), std::move(error), std::move(cost), options_.seed);
  return explorer.explore(options);
}

FlashAccelerator::TunedConfig FlashAccelerator::tune_layer(const tensor::LayerConfig& layer,
                                                           double tolerable_output_error,
                                                           double activation_rms,
                                                           std::size_t evaluations) const {
  dse::DseOptions options;
  options.evaluations = evaluations;
  const auto points = explore_layer(layer, options);
  TunedConfig tuned;
  tuned.threshold = dse::spectrum_error_threshold(tolerable_output_error, activation_rms);
  tuned.point = dse::DseExplorer::best_under_threshold(points, tuned.threshold);
  dse::DesignSpace space(ctx_.params().n / 2, dse::SpaceBounds{});
  tuned.config = space.to_config(tuned.point.point, 8.0);
  return tuned;
}

}  // namespace flash::core
