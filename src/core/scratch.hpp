// Per-thread scratch arenas for the transform hot path.
//
// Every transform call used to pay one or more std::vector allocations for
// its working buffers (fold buffer, mantissa arrays, conjugate copies). On
// the multi-thread HConv pipeline those allocations serialize in the
// allocator and dominate small-N transform cost. A ScratchArena is a bump
// allocator owned by one thread: allocation is a pointer increment, release
// is a watermark restore, and the backing chunks are retained across calls —
// so after a warmup call per (thread, shape) the steady state performs zero
// heap allocations (asserted by tests/test_alloc_free.cpp).
//
// Ownership rules (ARCHITECTURE.md §8):
//   * an arena belongs to exactly one thread; it is never shared or locked.
//     Transform APIs default to thread_scratch(), the calling thread's
//     thread-local arena, and a caller may pass its own arena only if that
//     arena is confined to the calling thread;
//   * spans returned by alloc() are valid until the enclosing ScratchFrame
//     is destroyed; frames nest like stack frames (transform calling
//     transform is fine), and must be destroyed in LIFO order;
//   * element lifetimes: alloc() returns uninitialized storage for
//     trivially-copyable, trivially-destructible element types only. Callers
//     must write before reading.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace flash::core {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Watermark into the chunk list; release() restores it. Opaque to callers
  /// (use ScratchFrame).
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  Mark mark() const { return {active_, chunks_.empty() ? 0 : chunks_[active_].used}; }

  void release(Mark m) {
    if (chunks_.empty()) return;
    for (std::size_t c = m.chunk + 1; c < chunks_.size(); ++c) chunks_[c].used = chunks_[c].start;
    active_ = m.chunk;
    // A mark taken before the chunk existed (empty arena) restores to the
    // chunk's aligned start, never below it.
    chunks_[active_].used = m.used > chunks_[active_].start ? m.used : chunks_[active_].start;
  }

  /// Uninitialized storage for n elements of T, 64-byte aligned. Grows the
  /// arena on first use; steady-state calls never touch the heap.
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                  "ScratchArena holds raw storage; element type must be trivial to copy/destroy");
    std::byte* p = bump(n * sizeof(T));
    return {reinterpret_cast<T*>(p), n};
  }

  /// Total backing capacity in bytes (monotone; retained across release()).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  static constexpr std::size_t kAlign = 64;        // cache-line / AVX-512 friendly
  static constexpr std::size_t kMinChunk = 1 << 16;  // 64 KiB

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;   // total bytes in data
    std::size_t start = 0;  // first 64-byte-aligned offset
    std::size_t used = 0;   // bump watermark; always start + k*kAlign
  };

  static std::size_t align_up(std::size_t v) { return (v + (kAlign - 1)) & ~(kAlign - 1); }

  std::byte* bump(std::size_t bytes) {
    bytes = align_up(bytes == 0 ? 1 : bytes);
    // Try the active chunk, then any later retained chunk, then grow.
    for (std::size_t c = active_; c < chunks_.size(); ++c) {
      Chunk& ch = chunks_[c];
      if (ch.size - ch.used >= bytes) {
        std::byte* p = ch.data.get() + ch.used;
        ch.used += bytes;
        active_ = c;
        return p;
      }
    }
    std::size_t size = chunks_.empty() ? kMinChunk : chunks_.back().size * 2;
    if (size < bytes + kAlign) size = bytes + kAlign;
    Chunk ch;
    // operator new guarantees alignment only up to __STDCPP_DEFAULT_NEW_ALIGNMENT__
    // (16 on x86-64); over-allocate so the aligned start always fits.
    ch.data = std::make_unique<std::byte[]>(size);
    ch.size = size;
    const auto base = reinterpret_cast<std::uintptr_t>(ch.data.get());
    ch.start = align_up(base) - base;
    ch.used = ch.start + bytes;
    std::byte* p = ch.data.get() + ch.start;
    chunks_.push_back(std::move(ch));
    active_ = chunks_.size() - 1;
    return p;
  }

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
};

/// The calling thread's arena. Thread-local by construction, so using it is
/// race-free without locks; pool workers each warm up their own copy.
inline ScratchArena& thread_scratch() {
  thread_local ScratchArena arena;
  return arena;
}

/// RAII watermark: everything alloc()ed through (or after) the frame is
/// reclaimed when the frame dies. Frames must nest LIFO.
class ScratchFrame {
 public:
  explicit ScratchFrame(ScratchArena& arena) : arena_(arena), mark_(arena.mark()) {}
  ScratchFrame(const ScratchFrame&) = delete;
  ScratchFrame& operator=(const ScratchFrame&) = delete;
  ~ScratchFrame() { arena_.release(mark_); }

  template <typename T>
  std::span<T> alloc(std::size_t n) {
    return arena_.alloc<T>(n);
  }

  ScratchArena& arena() { return arena_; }

 private:
  ScratchArena& arena_;
  ScratchArena::Mark mark_;
};

/// Resolve an optional caller-supplied arena to a concrete one.
inline ScratchArena& scratch_or_thread(ScratchArena* arena) {
  return arena != nullptr ? *arena : thread_scratch();
}

}  // namespace flash::core
