// Fixed-size thread pool with a blocking parallel_for over index ranges.
//
// Deliberately work-stealing-free: one shared claim counter per job, indices
// handed out one at a time. Our parallel bodies are heavyweight (a whole
// HConv call, a full N-point transform), so claim contention is negligible
// and the simple design keeps the memory model easy to audit under TSan.
//
// The calling thread participates in its own job, which makes nested
// parallel_for calls (tiles -> output channels) deadlock-free: a caller
// whose workers are all busy simply executes every index itself.
//
// Exceptions thrown by a body are captured (first one wins), remaining
// indices of that job are skipped, and the exception is rethrown on the
// calling thread once the job has drained.
//
// Header-only so any layer (protocol, bfv, benches) can use it without a
// link-time dependency on the core library.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/thread_annotations.hpp"

namespace flash::core {

class ThreadPool {
 public:
  /// What a ThreadPool(0) resolves to: hardware_concurrency, floored at 1.
  static std::size_t default_thread_count() {
    const std::size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  /// threads = total concurrency (workers spawned = threads - 1; the caller
  /// of parallel_for is the remaining thread). threads == 0 means
  /// hardware_concurrency. threads == 1 spawns nothing and runs inline.
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) threads = default_thread_count();
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Jobs currently enqueued (their callers are inside parallel_for). An
  /// instantaneous observability reading for the serve metrics exporter —
  /// not a synchronization primitive.
  std::size_t pending_jobs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
  }

  /// Run body(i) for every i in [begin, end), distributed over the pool.
  /// Blocks until every index has finished; rethrows the first exception.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body) {
    if (end <= begin) return;
    const std::size_t count = end - begin;
    if (workers_.empty() || count == 1) {
      for (std::size_t i = begin; i < end; ++i) body(i);
      return;
    }

    Job job;
    job.begin = begin;
    job.count = count;
    job.body = &body;
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(&job);
    }
    work_cv_.notify_all();

    run_job(job);  // the caller works too

    wait_drained(job);
    // All workers have left run_job for this job (active == 0 under mu_),
    // so the error slot is quiescent; take its lock anyway to keep the
    // acquire ordering explicit and the lock discipline checkable.
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> elock(job.error_mu);
      error = job.error;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  struct Job {
    std::size_t begin = 0;
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    // Guarded by the pool's mu_; a nested struct cannot spell
    // FLASH_GUARDED_BY on a per-instance outer member, so this one is
    // documentation-only.
    std::size_t active = 0;  // worker threads currently inside run_job
    std::mutex error_mu;
    std::exception_ptr error FLASH_GUARDED_BY(error_mu);
  };

  /// Claim and execute indices until the job's range is exhausted.
  void run_job(Job& job) {
    for (;;) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.count) break;
      if (!job.failed.load(std::memory_order_relaxed)) {
        try {
          (*job.body)(job.begin + i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(job.error_mu);
          if (!job.error) job.error = std::current_exception();
          job.failed.store(true, std::memory_order_relaxed);
        }
      }
      job.done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  /// Block until every index of `job` has finished and no worker is still
  /// inside run_job, then unlink it from the queue. Uses a condition-variable
  /// wait whose predicate reads mu_-guarded state under the waited-on lock —
  /// a pattern the static analysis cannot follow through std::unique_lock,
  /// hence the explicit opt-out (the TSan tier covers it dynamically).
  void wait_drained(Job& job) FLASH_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job.done.load() == job.count && job.active == 0; });
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (*it == &job) {
        jobs_.erase(it);
        break;
      }
    }
  }

  /// Same opt-out rationale as wait_drained: the wait predicate scans the
  /// mu_-guarded job queue while the condition variable holds the lock.
  void worker_loop() FLASH_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      Job* job = nullptr;
      work_cv_.wait(lock, [&] {
        if (stop_) return true;
        for (Job* j : jobs_) {
          if (j->next.load(std::memory_order_relaxed) < j->count) {
            job = j;
            return true;
          }
        }
        return false;
      });
      if (stop_) return;
      if (!job) continue;
      ++job->active;
      lock.unlock();
      run_job(*job);
      lock.lock();
      --job->active;
      done_cv_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: new job / shutdown
  std::condition_variable done_cv_;  // callers: job drained
  std::deque<Job*> jobs_ FLASH_GUARDED_BY(mu_);
  bool stop_ FLASH_GUARDED_BY(mu_) = false;
};

/// Convenience: distribute [0, count) over pool, or run inline when pool is
/// null. The shape every call site in the protocol layer uses.
inline void for_range(ThreadPool* pool, std::size_t count,
                      const std::function<void(std::size_t)>& body) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count; ++i) body(i);
  } else {
    pool->parallel_for(0, count, body);
  }
}

}  // namespace flash::core
