// Clang thread-safety-analysis annotation macros.
//
// Under clang with -Wthread-safety these expand to the static-analysis
// attributes that let the compiler prove lock discipline at compile time
// (which mutex guards which field, which functions require or exclude which
// locks). Under gcc — which has no such attributes — they expand to nothing,
// so annotated headers stay warning-clean everywhere.
//
// Conventions (documented in ARCHITECTURE.md §7):
//   * every mutable field shared across threads is GUARDED_BY its mutex;
//   * private helpers that assume a held lock are REQUIRES(mu);
//   * public entry points that take the lock themselves are EXCLUDES(mu);
//   * condition-variable wait loops whose predicates legitimately read
//     guarded state under the waited-on lock get NO_THREAD_SAFETY_ANALYSIS
//     with a comment, never a blanket cast.
//
// CI builds the library targets with clang -Wthread-safety -Werror (the
// static-analysis job); libc++ is required there because libstdc++'s
// std::mutex carries no capability attributes.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define FLASH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FLASH_THREAD_ANNOTATION
#define FLASH_THREAD_ANNOTATION(x)
#endif

#define FLASH_CAPABILITY(x) FLASH_THREAD_ANNOTATION(capability(x))
#define FLASH_GUARDED_BY(x) FLASH_THREAD_ANNOTATION(guarded_by(x))
#define FLASH_PT_GUARDED_BY(x) FLASH_THREAD_ANNOTATION(pt_guarded_by(x))
#define FLASH_REQUIRES(...) FLASH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FLASH_EXCLUDES(...) FLASH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FLASH_ACQUIRE(...) FLASH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FLASH_RELEASE(...) FLASH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FLASH_RETURN_CAPABILITY(x) FLASH_THREAD_ANNOTATION(lock_returned(x))
#define FLASH_NO_THREAD_SAFETY_ANALYSIS FLASH_THREAD_ANNOTATION(no_thread_safety_analysis)
