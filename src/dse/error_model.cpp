#include "dse/error_model.hpp"

#include <cmath>
#include <limits>

#include "fft/negacyclic.hpp"

namespace flash::dse {

ErrorModel::ErrorModel(std::size_t m, double input_power, double input_max_abs,
                       double coefficient_max_abs)
    : m_(m), input_power_(input_power), input_max_abs_(input_max_abs),
      coefficient_max_abs_(coefficient_max_abs > 0.0 ? coefficient_max_abs : input_max_abs) {}

ErrorModel ErrorModel::from_weight_stats(std::size_t n, std::size_t weight_nnz, double max_w) {
  // Weight coefficients: nnz values of variance ~ (max_w/2)^2 among n slots.
  // Folding to n/2 complex points pairs two real slots per point, so the
  // per-point expected power is 2 * (nnz/n) * var.
  const double var = (max_w / 2.0) * (max_w / 2.0);
  const double power = 2.0 * static_cast<double>(weight_nnz) / static_cast<double>(n) * var;
  return ErrorModel(n / 2, power, max_w * 1.4143, max_w);  // folded |z| <= sqrt(2)*max_w
}

double ErrorModel::predict_variance(const DesignSpace& space, const DesignPoint& p) const {
  const int stages = space.stages();
  // Twiddle quantization RMS for k CSD digits: residual after k greedy digits
  // is bounded by 2^-(k+1) of the leading digit; empirically ~2^-(1.5k)/sqrt(12)
  // for twiddles in [-1,1]. Use the measured table RMS for fidelity.
  const auto table = fft::quantize_fft_twiddles(m_, +1, p.twiddle_k, -std::max(20, space.bounds().max_width));
  const double sigma_w = fft::twiddle_rms_error(table);
  const double sigma_w2 = sigma_w * sigma_w;

  // Input quantization noise.
  const fft::FxpFftConfig cfg = space.to_config(p, input_max_abs_);
  auto round_var = [](int frac_bits) {
    const double delta = std::exp2(-frac_bits);
    return delta * delta / 12.0;
  };

  double err = 2.0 * round_var(cfg.input_frac_bits);  // re + im components
  double signal = input_power_;
  for (int s = 1; s <= stages; ++s) {
    // Errors from previous stages pass through one more butterfly level:
    // each output is u +/- Wv, so uncorrelated error power doubles.
    err *= 2.0;
    // Twiddle quantization acts on the v operand (signal power `signal`).
    err += signal * sigma_w2;
    // Output rounding of this stage (both butterfly outputs, re + im).
    err += 2.0 * round_var(cfg.stage_frac_bits[static_cast<std::size_t>(s - 1)]);
    // Signal power doubles per stage for uncorrelated inputs.
    signal *= 2.0;
  }
  return err;
}

double spectrum_error_threshold(double tolerable_output_error, double activation_rms) {
  if (tolerable_output_error <= 0.0 || activation_rms <= 0.0) {
    throw std::invalid_argument("spectrum_error_threshold: arguments must be positive");
  }
  const double ratio = tolerable_output_error / activation_rms;
  return ratio * ratio;
}

double ErrorModel::predict_variance_pow2(const analysis::Pow2Obligation& ob, int k) {
  return analysis::analyze_pow2_polymul(ob, k).wrap_free
             ? 0.0
             : std::numeric_limits<double>::infinity();
}

double measured_error_variance(std::size_t n, const fft::FxpFftConfig& config, std::size_t nnz,
                               std::int64_t max_w, std::size_t trials, std::mt19937_64& rng) {
  const fft::NegacyclicFft exact(n);
  const fft::FxpNegacyclicTransform approx(n, config);
  std::uniform_int_distribution<std::size_t> pos(0, n - 1);
  std::uniform_int_distribution<std::int64_t> val(-max_w, max_w);

  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<double> a(n, 0.0);
    for (std::size_t i = 0; i < nnz; ++i) {
      std::int64_t v = val(rng);
      if (v == 0) v = 1;
      a[pos(rng)] = static_cast<double>(v);
    }
    const auto exact_spec = exact.forward(a);
    const auto approx_spec = approx.forward(a);
    for (std::size_t i = 0; i < exact_spec.size(); ++i) {
      acc += std::norm(approx_spec[i] - exact_spec[i]);
      ++count;
    }
  }
  return count ? acc / static_cast<double>(count) : 0.0;
}

}  // namespace flash::dse
