// Static proof obligations for DSE candidates.
//
// Before a design point is admitted into the search archive it must be
// *proven* overflow-free by the interval analyzer: the negacyclic weight
// transform of degree 2*fft_size, configured exactly the way the search
// would ship it (to_config with the model's folded input bound), analyzed
// against the model's worst-case coefficient magnitude. Candidates that
// cannot be proven are resampled before the (more expensive) error/power
// evaluation — the static-analysis analogue of the paper rejecting infeasible
// points before simulation.
//
// Optionally the search can also carry an *end-to-end* obligation
// (PipelineObligation): the design point, run as the approximate-FFT
// backend of an HConv unit over a canonical worst-case weight kernel, must
// yield a proven-correct-decryption certificate from the pipeline certifier
// (analysis/pipeline_certifier.hpp). A point can be saturation-free yet
// accumulate enough spectrum error to corrupt decryption at the target BFV
// parameters — that point must never enter the archive.
#pragma once

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/fxp_analyzer.hpp"
#include "analysis/pipeline_certifier.hpp"
#include "analysis/pow2_model.hpp"
#include "dse/error_model.hpp"
#include "dse/space.hpp"

namespace flash::dse {

/// End-to-end admission requirement: the BFV parameter set the design point
/// will serve (params.n must equal 2 * fft_size) plus the canonical conv
/// workload it is certified against — a single-output-channel kernel with
/// every weight at the magnitude bound max_w, the l1/l2-maximal member of
/// the weight family the error model describes.
struct PipelineObligation {
  bfv::BfvParams params;
  std::size_t in_c = 1;
  std::size_t in_h = 0, in_w = 0;
  std::size_t kernel_h = 1, kernel_w = 1;
  double max_w = 1.0;
};

/// Run the overflow analyzer on one design point (degree = 2 * fft_size).
analysis::AnalysisResult analyze_design_point(const DesignSpace& space, const ErrorModel& model,
                                              const DesignPoint& point);

/// True iff every stage of the point's transform is provably saturation-free.
bool design_point_proven_safe(const DesignSpace& space, const ErrorModel& model,
                              const DesignPoint& point);

/// Certify the design point end-to-end against the obligation's canonical
/// workload (backend kApproxFft, config = to_config with the model's input
/// bound). Throws std::invalid_argument when params.n != 2 * fft_size.
analysis::PipelineCertificate certify_design_point(const DesignSpace& space,
                                                   const ErrorModel& model,
                                                   const PipelineObligation& obligation,
                                                   const DesignPoint& point);

/// Memoizing wrapper for search loops: mutation/crossover revisit points, and
/// the analysis (twiddle-table construction + interval sweep, plus the
/// pipeline certificate when an obligation is attached) is worth caching
/// across the few hundred evaluations of one explore() call.
class SafetyCache {
 public:
  SafetyCache(const DesignSpace& space, const ErrorModel& model,
              std::optional<PipelineObligation> obligation = std::nullopt,
              std::optional<analysis::Pow2Obligation> pow2_obligation = std::nullopt)
      : space_(space), model_(model), obligation_(std::move(obligation)),
        pow2_obligation_(pow2_obligation) {}

  /// Overflow-free AND (when an obligation is attached) certified
  /// proven-correct-decryption.
  bool proven_safe(const DesignPoint& point);

  /// Admission proof for the kPow2 backend arm: the wrap-freedom obligation
  /// (analysis/pow2_model.hpp) holds at ring width k. The obligation is
  /// exact-or-broken — there is no error budget to spend mod 2^k — so this
  /// is the *whole* proof, the Z_{2^k} analogue of the interval analyzer's
  /// no-saturation verdict. Throws std::logic_error when the cache was built
  /// without a Pow2Obligation.
  bool proven_wrap_free(int k);

 private:
  const DesignSpace& space_;
  const ErrorModel& model_;
  std::optional<PipelineObligation> obligation_;
  std::optional<analysis::Pow2Obligation> pow2_obligation_;
  std::map<std::pair<std::vector<int>, int>, bool> verdicts_;
  std::map<int, bool> pow2_verdicts_;
};

}  // namespace flash::dse
