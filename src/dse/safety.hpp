// Static proof obligation for DSE candidates.
//
// Before a design point is admitted into the search archive it must be
// *proven* overflow-free by the interval analyzer: the negacyclic weight
// transform of degree 2*fft_size, configured exactly the way the search
// would ship it (to_config with the model's folded input bound), analyzed
// against the model's worst-case coefficient magnitude. Candidates that
// cannot be proven are resampled before the (more expensive) error/power
// evaluation — the static-analysis analogue of the paper rejecting infeasible
// points before simulation.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "analysis/fxp_analyzer.hpp"
#include "dse/error_model.hpp"
#include "dse/space.hpp"

namespace flash::dse {

/// Run the overflow analyzer on one design point (degree = 2 * fft_size).
analysis::AnalysisResult analyze_design_point(const DesignSpace& space, const ErrorModel& model,
                                              const DesignPoint& point);

/// True iff every stage of the point's transform is provably saturation-free.
bool design_point_proven_safe(const DesignSpace& space, const ErrorModel& model,
                              const DesignPoint& point);

/// Memoizing wrapper for search loops: mutation/crossover revisit points, and
/// the analysis (twiddle-table construction + interval sweep) is worth
/// caching across the few hundred evaluations of one explore() call.
class SafetyCache {
 public:
  SafetyCache(const DesignSpace& space, const ErrorModel& model) : space_(space), model_(model) {}

  bool proven_safe(const DesignPoint& point);

 private:
  const DesignSpace& space_;
  const ErrorModel& model_;
  std::map<std::pair<std::vector<int>, int>, bool> verdicts_;
};

}  // namespace flash::dse
