// Error estimation for approximate-FFT design points (paper Fig. 10,
// "analytical simulations" for fast error estimation during DSE).
//
// Two estimators:
//   * analytical — closed-form quantization-noise propagation: each stage
//     injects rounding noise Delta^2/12 per real component plus twiddle
//     quantization noise |v|^2 * sigma_w^2, and every later stage doubles the
//     accumulated error power (butterflies are energy-doubling for
//     uncorrelated noise). O(log M) per design point, used inside the
//     search loop.
//   * Monte-Carlo — run the bit-accurate FxpFft on sampled weight
//     polynomials and measure the spectrum error variance against the exact
//     FFT. Used to validate the analytical model and to score final fronts.
#pragma once

#include <random>

#include "analysis/pow2_model.hpp"
#include "dse/space.hpp"

namespace flash::dse {

class ErrorModel {
 public:
  /// m: FFT size. input_power: E[|z|^2] of the (folded, twisted) input
  /// sequence. input_max_abs: bound on |input| coefficients.
  /// coefficient_max_abs: bound on the *pre-fold* real polynomial
  /// coefficients (what the static overflow analyzer needs); defaults to
  /// input_max_abs, which is conservative since the folded |z| bound always
  /// dominates the coefficient bound.
  ErrorModel(std::size_t m, double input_power, double input_max_abs,
             double coefficient_max_abs = 0.0);

  /// Predicted per-element error variance of the output spectrum.
  double predict_variance(const DesignSpace& space, const DesignPoint& p) const;

  /// Error budget of the kPow2 backend arm at ring width k: exactly 0 when
  /// the wrap-freedom obligation holds (Z_{2^k} Karatsuba is bit-exact), and
  /// +infinity otherwise — wraparound aliases mod 2^k with no graceful
  /// degradation, so an unprovable width is unusable at any threshold.
  static double predict_variance_pow2(const analysis::Pow2Obligation& ob, int k);

  double input_power() const { return input_power_; }
  double input_max_abs() const { return input_max_abs_; }
  double coefficient_max_abs() const { return coefficient_max_abs_; }

  /// Input statistics measured from an actual coefficient-encoded weight
  /// polynomial population: nnz values of magnitude <= max_w in a degree-n
  /// poly, folded to n/2 complex points.
  static ErrorModel from_weight_stats(std::size_t n, std::size_t weight_nnz, double max_w);

 private:
  std::size_t m_;
  double input_power_;
  double input_max_abs_;
  double coefficient_max_abs_;
};

/// Monte-Carlo ground truth: mean per-element squared error of the
/// approximate spectrum over `trials` random sparse weight polynomials.
/// n: ring degree (transform size n/2); nnz/max_w describe the weights.
double measured_error_variance(std::size_t n, const fft::FxpFftConfig& config, std::size_t nnz,
                               std::int64_t max_w, std::size_t trials, std::mt19937_64& rng);

/// The paper's T_err for a layer: the tolerable weight-spectrum error
/// variance, derived from how much conv-output perturbation downstream
/// robustness absorbs. A spectrum error of variance V perturbs each conv
/// output by roughly sqrt(V) * activation_rms (the error spectrum multiplies
/// the activation spectrum, both spread over the same transform length), so
///     T_err = (tolerable_output_error / activation_rms)^2.
/// tolerable_output_error: half the discarded requantization LSBs for
/// layer-level absorption (Fig. 5(b)), or < 0.5 for bit-exactness.
double spectrum_error_threshold(double tolerable_output_error, double activation_rms);

}  // namespace flash::dse
