// The approximate-FFT design space (paper Section IV-C2).
//
// A design point fixes the data bit-width of every FFT stage plus the
// twiddle quantization level k — exactly the knobs of the paper's
// min-power-s.t.-error formulation. The space for a 2048-point FFT with
// widths in [10, 39] and k in [2, 18] has ~30^11 * 17 points, hence search.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "fft/fxp_fft.hpp"

namespace flash::dse {

struct DesignPoint {
  std::vector<int> stage_widths;  // total data width per FFT stage
  int twiddle_k = 5;

  bool operator==(const DesignPoint&) const = default;
};

struct SpaceBounds {
  int min_width = 10;
  int max_width = 39;
  int min_k = 2;
  int max_k = 18;
};

class DesignSpace {
 public:
  DesignSpace(std::size_t fft_size, SpaceBounds bounds);

  std::size_t fft_size() const { return m_; }
  int stages() const { return stages_; }
  const SpaceBounds& bounds() const { return bounds_; }

  DesignPoint random(std::mt19937_64& rng) const;
  /// Perturb one or two coordinates by +/- a few bits.
  DesignPoint mutate(const DesignPoint& p, std::mt19937_64& rng) const;
  /// Per-coordinate uniform crossover.
  DesignPoint crossover(const DesignPoint& a, const DesignPoint& b, std::mt19937_64& rng) const;

  /// The most expensive (most accurate) corner: all widths = max, k = max.
  DesignPoint full_precision() const;

  /// Convert to an executable fixed-point FFT configuration given the
  /// magnitude of the input data (determines integer-bit allocation).
  /// input_max_abs is the largest |coefficient| entering the transform.
  fft::FxpFftConfig to_config(const DesignPoint& p, double input_max_abs) const;

  /// Integer bits the data can grow to by the end of stage s (1-based);
  /// stage 0 = input. Growth is one bit per butterfly stage plus sign.
  int int_bits(int stage, double input_max_abs) const;

 private:
  std::size_t m_;
  int stages_;
  SpaceBounds bounds_;
};

}  // namespace flash::dse
