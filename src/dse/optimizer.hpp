// Multi-objective exploration of the approximate-FFT space.
//
// The paper uses Bayesian optimization; we substitute an elitist
// evolutionary Pareto search (random restarts + mutation + crossover over a
// non-dominated archive). Both are derivative-free sample-efficient
// optimizers over the same objectives — error variance (analytical model)
// vs. power (LUT model) — and the deliverable is the same: a Pareto front of
// ~1000 evaluated design points per layer (Fig. 11(b)(c)). See DESIGN.md.
#pragma once

#include "dse/cost_model.hpp"
#include "dse/error_model.hpp"
#include "dse/safety.hpp"

namespace flash::dse {

struct EvaluatedPoint {
  DesignPoint point;
  double error_variance = 0.0;
  double normalized_power = 0.0;
};

/// a dominates b (strictly better on one objective, not worse on the other).
bool dominates(const EvaluatedPoint& a, const EvaluatedPoint& b);

/// Extract the non-dominated subset, sorted by power.
std::vector<EvaluatedPoint> pareto_front(std::vector<EvaluatedPoint> points);

struct DseOptions {
  std::size_t evaluations = 1000;
  std::size_t population = 32;
  double crossover_rate = 0.4;
  /// Optional constraint: discard points with error variance above this
  /// threshold (the paper's T_err); 0 disables.
  double error_threshold = 0.0;
  /// Optional end-to-end admission requirement: only design points whose
  /// pipeline certificate proves correct decryption on this workload enter
  /// the archive (dse/safety.hpp). nullopt = overflow obligation only.
  std::optional<PipelineObligation> pipeline;
};

class DseExplorer {
 public:
  DseExplorer(DesignSpace space, ErrorModel error_model, CostModel cost_model, std::uint64_t seed);

  /// Run the search; returns every evaluated point (the scatter of
  /// Fig. 11(b)(c)).
  std::vector<EvaluatedPoint> explore(const DseOptions& options);

  EvaluatedPoint evaluate(const DesignPoint& p) const;

  /// Cheapest point meeting the error threshold (the paper's argmin power
  /// s.t. err <= T_err); throws if none found.
  static EvaluatedPoint best_under_threshold(const std::vector<EvaluatedPoint>& points,
                                             double error_threshold);

 private:
  DesignSpace space_;
  ErrorModel error_model_;
  CostModel cost_model_;
  std::mt19937_64 rng_;
};

}  // namespace flash::dse
