#include "dse/space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hemath/bitrev.hpp"

namespace flash::dse {

DesignSpace::DesignSpace(std::size_t fft_size, SpaceBounds bounds)
    : m_(fft_size), stages_(hemath::log2_exact(fft_size)), bounds_(bounds) {
  if (bounds_.min_width < 4 || bounds_.max_width > 62 || bounds_.min_width > bounds_.max_width) {
    throw std::invalid_argument("DesignSpace: bad width bounds");
  }
  if (bounds_.min_k < 1 || bounds_.min_k > bounds_.max_k) {
    throw std::invalid_argument("DesignSpace: bad k bounds");
  }
}

DesignPoint DesignSpace::random(std::mt19937_64& rng) const {
  std::uniform_int_distribution<int> width(bounds_.min_width, bounds_.max_width);
  std::uniform_int_distribution<int> kdist(bounds_.min_k, bounds_.max_k);
  DesignPoint p;
  p.stage_widths.resize(static_cast<std::size_t>(stages_));
  for (auto& w : p.stage_widths) w = width(rng);
  p.twiddle_k = kdist(rng);
  return p;
}

DesignPoint DesignSpace::mutate(const DesignPoint& p, std::mt19937_64& rng) const {
  DesignPoint out = p;
  std::uniform_int_distribution<int> coord(0, stages_);  // stages_ selects k
  std::uniform_int_distribution<int> delta(-3, 3);
  const int mutations = 1 + static_cast<int>(rng() % 2);
  for (int i = 0; i < mutations; ++i) {
    const int c = coord(rng);
    int d = delta(rng);
    if (d == 0) d = 1;
    if (c == stages_) {
      out.twiddle_k = std::clamp(out.twiddle_k + d, bounds_.min_k, bounds_.max_k);
    } else {
      auto& w = out.stage_widths[static_cast<std::size_t>(c)];
      w = std::clamp(w + d, bounds_.min_width, bounds_.max_width);
    }
  }
  return out;
}

DesignPoint DesignSpace::crossover(const DesignPoint& a, const DesignPoint& b,
                                   std::mt19937_64& rng) const {
  DesignPoint out = a;
  for (std::size_t i = 0; i < out.stage_widths.size(); ++i) {
    if (rng() & 1) out.stage_widths[i] = b.stage_widths[i];
  }
  if (rng() & 1) out.twiddle_k = b.twiddle_k;
  return out;
}

DesignPoint DesignSpace::full_precision() const {
  DesignPoint p;
  p.stage_widths.assign(static_cast<std::size_t>(stages_), bounds_.max_width);
  p.twiddle_k = bounds_.max_k;
  return p;
}

int DesignSpace::int_bits(int stage, double input_max_abs) const {
  // |value| after stage s is bounded by input_max_abs * 2^s (each butterfly
  // at most doubles the magnitude; the twist keeps |.| unchanged).
  const double mag = std::max(input_max_abs, 1.0) * std::exp2(static_cast<double>(stage));
  return static_cast<int>(std::ceil(std::log2(mag + 1.0))) + 1;  // +1 sign
}

fft::FxpFftConfig DesignSpace::to_config(const DesignPoint& p, double input_max_abs) const {
  if (p.stage_widths.size() != static_cast<std::size_t>(stages_)) {
    throw std::invalid_argument("DesignSpace::to_config: point stage count mismatch");
  }
  fft::FxpFftConfig cfg;
  cfg.data_width = *std::max_element(p.stage_widths.begin(), p.stage_widths.end());
  cfg.twiddle_k = p.twiddle_k;
  cfg.twiddle_min_exp = -std::max(20, cfg.data_width - 4);
  cfg.stage_frac_bits.resize(static_cast<std::size_t>(stages_));
  cfg.input_frac_bits = std::max(0, p.stage_widths.front() - int_bits(0, input_max_abs));
  for (int s = 1; s <= stages_; ++s) {
    const int w = p.stage_widths[static_cast<std::size_t>(s - 1)];
    cfg.stage_frac_bits[static_cast<std::size_t>(s - 1)] = std::max(0, w - int_bits(s, input_max_abs));
  }
  return cfg;
}

}  // namespace flash::dse
