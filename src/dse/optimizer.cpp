#include "dse/optimizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "dse/safety.hpp"

namespace flash::dse {

bool dominates(const EvaluatedPoint& a, const EvaluatedPoint& b) {
  const bool no_worse = a.error_variance <= b.error_variance && a.normalized_power <= b.normalized_power;
  const bool better = a.error_variance < b.error_variance || a.normalized_power < b.normalized_power;
  return no_worse && better;
}

std::vector<EvaluatedPoint> pareto_front(std::vector<EvaluatedPoint> points) {
  std::vector<EvaluatedPoint> front;
  for (const auto& p : points) {
    bool dominated = false;
    for (const auto& q : points) {
      if (dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p);
  }
  std::sort(front.begin(), front.end(),
            [](const EvaluatedPoint& a, const EvaluatedPoint& b) {
              return a.normalized_power < b.normalized_power;
            });
  // Deduplicate identical objective pairs.
  front.erase(std::unique(front.begin(), front.end(),
                          [](const EvaluatedPoint& a, const EvaluatedPoint& b) {
                            return a.normalized_power == b.normalized_power &&
                                   a.error_variance == b.error_variance;
                          }),
              front.end());
  return front;
}

DseExplorer::DseExplorer(DesignSpace space, ErrorModel error_model, CostModel cost_model,
                         std::uint64_t seed)
    : space_(std::move(space)), error_model_(std::move(error_model)),
      cost_model_(std::move(cost_model)), rng_(seed) {}

EvaluatedPoint DseExplorer::evaluate(const DesignPoint& p) const {
  EvaluatedPoint e;
  e.point = p;
  e.error_variance = error_model_.predict_variance(space_, p);
  e.normalized_power = cost_model_.normalized_power(p);
  return e;
}

std::vector<EvaluatedPoint> DseExplorer::explore(const DseOptions& options) {
  std::vector<EvaluatedPoint> all;
  all.reserve(options.evaluations);
  std::vector<EvaluatedPoint> archive;  // current non-dominated set

  auto admit = [&](const EvaluatedPoint& e) {
    all.push_back(e);
    for (const auto& q : archive) {
      if (dominates(q, e)) return;
    }
    archive.erase(std::remove_if(archive.begin(), archive.end(),
                                 [&](const EvaluatedPoint& q) { return dominates(e, q); }),
                  archive.end());
    archive.push_back(e);
  };

  // Every admitted candidate must first be *proven* overflow-free by the
  // interval analyzer — and, when options.pipeline is set, certified for
  // correct decryption end-to-end; unprovable draws are resampled (never
  // silently filtered, so the evaluation budget stays exact). The
  // full-precision corner is the provably-safe fallback when sampling runs
  // dry.
  SafetyCache safety(space_, error_model_, options.pipeline);
  if (!safety.proven_safe(space_.full_precision())) {
    throw std::runtime_error(
        "DseExplorer::explore: even the full-precision corner cannot be proven "
        "overflow-free for this input bound");
  }
  constexpr int kMaxDraws = 64;

  // Seed with random points (plus the full-precision corner as an anchor).
  admit(evaluate(space_.full_precision()));
  for (std::size_t i = 0; i < options.population && all.size() < options.evaluations; ++i) {
    DesignPoint p = space_.full_precision();
    for (int draw = 0; draw < kMaxDraws; ++draw) {
      DesignPoint q = space_.random(rng_);
      if (safety.proven_safe(q)) {
        p = std::move(q);
        break;
      }
    }
    admit(evaluate(p));
  }

  std::uniform_real_distribution<double> unit(0.0, 1.0);
  while (all.size() < options.evaluations) {
    DesignPoint candidate = space_.full_precision();
    for (int draw = 0; draw < kMaxDraws; ++draw) {
      const auto& a = archive[rng_() % archive.size()].point;
      DesignPoint q;
      if (archive.size() > 1 && unit(rng_) < options.crossover_rate) {
        const auto& b = archive[rng_() % archive.size()].point;
        q = space_.mutate(space_.crossover(a, b, rng_), rng_);
      } else {
        q = space_.mutate(a, rng_);
      }
      if (safety.proven_safe(q)) {
        candidate = std::move(q);
        break;
      }
    }
    admit(evaluate(candidate));
  }

  if (options.error_threshold > 0.0) {
    all.erase(std::remove_if(all.begin(), all.end(),
                             [&](const EvaluatedPoint& e) {
                               return e.error_variance > options.error_threshold;
                             }),
              all.end());
  }
  return all;
}

EvaluatedPoint DseExplorer::best_under_threshold(const std::vector<EvaluatedPoint>& points,
                                                 double error_threshold) {
  const EvaluatedPoint* best = nullptr;
  for (const auto& p : points) {
    if (p.error_variance <= error_threshold &&
        (best == nullptr || p.normalized_power < best->normalized_power)) {
      best = &p;
    }
  }
  if (best == nullptr) throw std::runtime_error("best_under_threshold: no feasible point");
  return *best;
}

}  // namespace flash::dse
