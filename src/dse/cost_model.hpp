// LUT-based hardware cost estimation for DSE (paper Fig. 10).
//
// RTL synthesis per candidate is far too slow for a 1000-point exploration,
// so FLASH pre-synthesizes butterfly units across the (width, k) grid and
// sums LUT entries per configuration. We do the same: the LUT is filled from
// the calibrated unit-cost models (accel/unit_costs.hpp) once, and a design
// point's energy is the per-stage butterfly count times the LUT entry for
// that stage's width.
#pragma once

#include <vector>

#include "dse/space.hpp"

namespace flash::dse {

class CostModel {
 public:
  /// Builds the (width, k) -> BU cost LUT for the given space bounds.
  CostModel(std::size_t fft_size, const SpaceBounds& bounds);

  /// Energy of one dense M-point transform at this design point (picojoules
  /// at 1 GHz).
  double energy_per_transform_pj(const DesignPoint& p) const;

  /// Energy normalized to the full-precision FP transform (the paper's
  /// Fig. 11(b)(c) x-axis, "normalized power estimation of weight FFT").
  double normalized_power(const DesignPoint& p) const;

  /// LUT lookup: per-butterfly energy (pJ) for one (width, k) cell.
  double bu_energy_pj(int width, int k) const;

  /// Denominator of normalized_power: energy of one full-precision FP
  /// transform (pJ). Exposed so other backend arms (dse/backend_axis.hpp)
  /// can report power on the same normalized axis.
  double fp_reference_pj() const { return fp_reference_pj_; }

 private:
  std::size_t m_;
  SpaceBounds bounds_;
  std::vector<double> lut_;  // (width - min_width) * k_range + (k - min_k)
  double fp_reference_pj_;
};

}  // namespace flash::dse
