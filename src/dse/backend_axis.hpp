// Joint backend x bit-width design space (the PR-10 backend axis).
//
// The base DseExplorer searches the approximate-FFT space alone; this layer
// adds the ct x pt *backend choice* as a first-class search coordinate, so
// one exploration trades the kApproxFft arm (continuous error budget,
// butterfly power quadratic-ish in stage widths) against the kPow2 arm
// (exactly zero error when the wrap proof holds, power set by Karatsuba
// multiply counts over k-bit mask-reduce multipliers). Both arms land on the
// same two objectives — spectrum-error variance and power normalized to the
// full-precision FP transform — so a single Pareto front shows where the
// exact Z_{2^k} ring beats spending approximation error, per layer.
//
// Admission is proof-gated on both arms, mirroring DseExplorer: an approx
// point enters the archive only if SafetyCache proves it saturation-free
// (and, optionally, end-to-end decryption-correct); a pow2 point enters only
// if its wrap-freedom obligation (analysis/pow2_model.hpp) holds at the
// candidate width k. Unprovable draws are resampled, never silently scored.
#pragma once

#include "bfv/polymul_engine.hpp"
#include "dse/optimizer.hpp"

namespace flash::dse {

/// One point of the joint space. `fxp` is live on the kApproxFft arm,
/// `pow2_k` (ring width, q = 2^k) on the kPow2 arm; the inactive coordinate
/// rides along untouched so mutation can flip backends without losing it.
struct BackendPoint {
  bfv::PolyMulBackend backend = bfv::PolyMulBackend::kApproxFft;
  DesignPoint fxp;
  int pow2_k = 32;

  bool operator==(const BackendPoint&) const = default;
};

struct EvaluatedBackendPoint {
  BackendPoint point;
  double error_variance = 0.0;
  double normalized_power = 0.0;
};

/// a dominates b on (error, power), as for EvaluatedPoint.
bool dominates(const EvaluatedBackendPoint& a, const EvaluatedBackendPoint& b);

/// Non-dominated subset sorted by power (mixed-backend front).
std::vector<EvaluatedBackendPoint> pareto_front(std::vector<EvaluatedBackendPoint> points);

/// Energy of one full ct x pt negacyclic product on the kPow2 arm (pJ at
/// 1 GHz): Karatsuba multiply count (hemath::pow2_mult_count) times a k-bit
/// mask-reduce multiplier. The multiplier is proxied as one quarter of the
/// calibrated plain complex FXP multiplier at width k (four real array
/// multiplies per complex multiply; mask reduction itself is free wiring).
/// Deliberately conservative against the approx arm: this prices the whole
/// product, while the FFT cost model prices only the weight transform.
double pow2_energy_per_product_pj(std::size_t n, int k);

/// pow2_energy_per_product_pj on the normalized_power axis of `cost`
/// (divided by the same full-precision FP transform reference).
double pow2_normalized_power(const CostModel& cost, std::size_t n, int k);

/// The joint space: the fxp DesignSpace plus a pow2 width range. Ring degree
/// n = 2 * fxp.fft_size() on both arms.
class BackendSpace {
 public:
  BackendSpace(DesignSpace fxp_space, int min_pow2_k = 8, int max_pow2_k = 62);

  const DesignSpace& fxp() const { return fxp_; }
  std::size_t ring_degree() const { return 2 * fxp_.fft_size(); }
  int min_pow2_k() const { return min_k_; }
  int max_pow2_k() const { return max_k_; }

  BackendPoint random(std::mt19937_64& rng) const;
  /// Perturb the active arm's coordinates; occasionally flips the backend.
  BackendPoint mutate(const BackendPoint& p, std::mt19937_64& rng) const;
  /// Uniform crossover per coordinate; the child takes one parent's backend.
  BackendPoint crossover(const BackendPoint& a, const BackendPoint& b,
                         std::mt19937_64& rng) const;

  /// Provably-safe anchor: the approx arm's full-precision corner.
  BackendPoint full_precision() const;

 private:
  DesignSpace fxp_;
  int min_k_;
  int max_k_;
};

struct BackendDseOptions {
  std::size_t evaluations = 1000;
  std::size_t population = 32;
  double crossover_rate = 0.4;
  double error_threshold = 0.0;  // 0 disables (as DseOptions)
  std::optional<PipelineObligation> pipeline;
};

class BackendExplorer {
 public:
  /// The Pow2Obligation fixes the workload the wrap proofs are discharged
  /// against (same weight statistics the ErrorModel describes).
  BackendExplorer(BackendSpace space, ErrorModel error_model, CostModel cost_model,
                  analysis::Pow2Obligation pow2_obligation, std::uint64_t seed);

  std::vector<EvaluatedBackendPoint> explore(const BackendDseOptions& options);

  /// Score one point; assumes admission already proved it (a wrapping pow2
  /// point scores +infinity error, so it can never shadow a proven one).
  EvaluatedBackendPoint evaluate(const BackendPoint& p) const;

 private:
  BackendSpace space_;
  ErrorModel error_model_;
  CostModel cost_model_;
  analysis::Pow2Obligation pow2_obligation_;
  std::mt19937_64 rng_;
};

}  // namespace flash::dse
