#include "dse/backend_axis.hpp"

#include <algorithm>
#include <stdexcept>

#include "accel/unit_costs.hpp"
#include "hemath/pow2.hpp"

namespace flash::dse {

bool dominates(const EvaluatedBackendPoint& a, const EvaluatedBackendPoint& b) {
  const bool no_worse =
      a.error_variance <= b.error_variance && a.normalized_power <= b.normalized_power;
  const bool better = a.error_variance < b.error_variance || a.normalized_power < b.normalized_power;
  return no_worse && better;
}

std::vector<EvaluatedBackendPoint> pareto_front(std::vector<EvaluatedBackendPoint> points) {
  std::vector<EvaluatedBackendPoint> front;
  for (const auto& p : points) {
    bool dominated = false;
    for (const auto& q : points) {
      if (dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p);
  }
  std::sort(front.begin(), front.end(),
            [](const EvaluatedBackendPoint& a, const EvaluatedBackendPoint& b) {
              return a.normalized_power < b.normalized_power;
            });
  front.erase(std::unique(front.begin(), front.end(),
                          [](const EvaluatedBackendPoint& a, const EvaluatedBackendPoint& b) {
                            return a.normalized_power == b.normalized_power &&
                                   a.error_variance == b.error_variance;
                          }),
              front.end());
  return front;
}

double pow2_energy_per_product_pj(std::size_t n, int k) {
  const double e_mul = accel::plain_fxp_mult(k).energy_pj(1e9) * 0.25;
  return static_cast<double>(hemath::pow2_mult_count(n)) * e_mul;
}

double pow2_normalized_power(const CostModel& cost, std::size_t n, int k) {
  return pow2_energy_per_product_pj(n, k) / cost.fp_reference_pj();
}

BackendSpace::BackendSpace(DesignSpace fxp_space, int min_pow2_k, int max_pow2_k)
    : fxp_(std::move(fxp_space)), min_k_(min_pow2_k), max_k_(max_pow2_k) {
  if (min_k_ < 2 || max_k_ > 62 || min_k_ > max_k_) {
    throw std::invalid_argument("BackendSpace: pow2 k range must satisfy 2 <= min <= max <= 62");
  }
}

BackendPoint BackendSpace::random(std::mt19937_64& rng) const {
  BackendPoint p;
  p.backend = (rng() & 1) ? bfv::PolyMulBackend::kPow2 : bfv::PolyMulBackend::kApproxFft;
  p.fxp = fxp_.random(rng);
  p.pow2_k = min_k_ + static_cast<int>(rng() % static_cast<std::uint64_t>(max_k_ - min_k_ + 1));
  return p;
}

BackendPoint BackendSpace::mutate(const BackendPoint& p, std::mt19937_64& rng) const {
  BackendPoint q = p;
  // One draw in eight flips the arm — often enough that both arms stay
  // populated, rare enough that local refinement dominates.
  if (rng() % 8 == 0) {
    q.backend = (q.backend == bfv::PolyMulBackend::kPow2) ? bfv::PolyMulBackend::kApproxFft
                                                          : bfv::PolyMulBackend::kPow2;
  }
  if (q.backend == bfv::PolyMulBackend::kPow2) {
    const int step = 1 + static_cast<int>(rng() % 3);
    const int sign = (rng() & 1) ? 1 : -1;
    q.pow2_k = std::clamp(q.pow2_k + sign * step, min_k_, max_k_);
  } else {
    q.fxp = fxp_.mutate(q.fxp, rng);
  }
  return q;
}

BackendPoint BackendSpace::crossover(const BackendPoint& a, const BackendPoint& b,
                                     std::mt19937_64& rng) const {
  BackendPoint c;
  c.backend = (rng() & 1) ? a.backend : b.backend;
  c.fxp = fxp_.crossover(a.fxp, b.fxp, rng);
  c.pow2_k = (rng() & 1) ? a.pow2_k : b.pow2_k;
  return c;
}

BackendPoint BackendSpace::full_precision() const {
  BackendPoint p;
  p.backend = bfv::PolyMulBackend::kApproxFft;
  p.fxp = fxp_.full_precision();
  p.pow2_k = max_k_;
  return p;
}

BackendExplorer::BackendExplorer(BackendSpace space, ErrorModel error_model, CostModel cost_model,
                                 analysis::Pow2Obligation pow2_obligation, std::uint64_t seed)
    : space_(std::move(space)), error_model_(std::move(error_model)),
      cost_model_(std::move(cost_model)), pow2_obligation_(pow2_obligation), rng_(seed) {
  if (pow2_obligation_.n != space_.ring_degree()) {
    throw std::invalid_argument(
        "BackendExplorer: pow2 obligation ring degree must equal 2 * fft_size");
  }
}

EvaluatedBackendPoint BackendExplorer::evaluate(const BackendPoint& p) const {
  EvaluatedBackendPoint e;
  e.point = p;
  if (p.backend == bfv::PolyMulBackend::kPow2) {
    e.error_variance = ErrorModel::predict_variance_pow2(pow2_obligation_, p.pow2_k);
    e.normalized_power = pow2_normalized_power(cost_model_, space_.ring_degree(), p.pow2_k);
  } else {
    e.error_variance = error_model_.predict_variance(space_.fxp(), p.fxp);
    e.normalized_power = cost_model_.normalized_power(p.fxp);
  }
  return e;
}

std::vector<EvaluatedBackendPoint> BackendExplorer::explore(const BackendDseOptions& options) {
  std::vector<EvaluatedBackendPoint> all;
  all.reserve(options.evaluations);
  std::vector<EvaluatedBackendPoint> archive;

  auto admit = [&](const EvaluatedBackendPoint& e) {
    all.push_back(e);
    for (const auto& q : archive) {
      if (dominates(q, e)) return;
    }
    archive.erase(std::remove_if(archive.begin(), archive.end(),
                                 [&](const EvaluatedBackendPoint& q) { return dominates(e, q); }),
                  archive.end());
    archive.push_back(e);
  };

  // Proof-gated admission on both arms (see DseExplorer::explore): approx
  // candidates go through the interval analyzer / pipeline certifier, pow2
  // candidates through the wrap-freedom proof. Unprovable draws resample.
  SafetyCache safety(space_.fxp(), error_model_, options.pipeline, pow2_obligation_);
  auto proven = [&](const BackendPoint& p) {
    return p.backend == bfv::PolyMulBackend::kPow2 ? safety.proven_wrap_free(p.pow2_k)
                                                   : safety.proven_safe(p.fxp);
  };
  const BackendPoint anchor = space_.full_precision();
  if (!proven(anchor)) {
    throw std::runtime_error(
        "BackendExplorer::explore: even the full-precision corner cannot be proven "
        "overflow-free for this input bound");
  }
  constexpr int kMaxDraws = 64;

  admit(evaluate(anchor));
  for (std::size_t i = 0; i < options.population && all.size() < options.evaluations; ++i) {
    BackendPoint p = anchor;
    for (int draw = 0; draw < kMaxDraws; ++draw) {
      BackendPoint q = space_.random(rng_);
      if (proven(q)) {
        p = std::move(q);
        break;
      }
    }
    admit(evaluate(p));
  }

  std::uniform_real_distribution<double> unit(0.0, 1.0);
  while (all.size() < options.evaluations) {
    BackendPoint candidate = anchor;
    for (int draw = 0; draw < kMaxDraws; ++draw) {
      const auto& a = archive[rng_() % archive.size()].point;
      BackendPoint q;
      if (archive.size() > 1 && unit(rng_) < options.crossover_rate) {
        const auto& b = archive[rng_() % archive.size()].point;
        q = space_.mutate(space_.crossover(a, b, rng_), rng_);
      } else {
        q = space_.mutate(a, rng_);
      }
      if (proven(q)) {
        candidate = std::move(q);
        break;
      }
    }
    admit(evaluate(candidate));
  }

  if (options.error_threshold > 0.0) {
    all.erase(std::remove_if(all.begin(), all.end(),
                             [&](const EvaluatedBackendPoint& e) {
                               return e.error_variance > options.error_threshold;
                             }),
              all.end());
  }
  return all;
}

}  // namespace flash::dse
