#include "dse/cost_model.hpp"

#include <stdexcept>

#include "accel/unit_costs.hpp"
#include "hemath/bitrev.hpp"

namespace flash::dse {

CostModel::CostModel(std::size_t fft_size, const SpaceBounds& bounds) : m_(fft_size), bounds_(bounds) {
  const int widths = bounds_.max_width - bounds_.min_width + 1;
  const int ks = bounds_.max_k - bounds_.min_k + 1;
  lut_.resize(static_cast<std::size_t>(widths) * static_cast<std::size_t>(ks));
  constexpr double kFreq = 1e9;
  for (int w = bounds_.min_width; w <= bounds_.max_width; ++w) {
    for (int k = bounds_.min_k; k <= bounds_.max_k; ++k) {
      const std::size_t idx = static_cast<std::size_t>(w - bounds_.min_width) * ks +
                              static_cast<std::size_t>(k - bounds_.min_k);
      lut_[idx] = accel::approx_bu(w, k).energy_pj(kFreq);
    }
  }
  fp_reference_pj_ = accel::fp_bu(39).energy_pj(kFreq);
}

double CostModel::bu_energy_pj(int width, int k) const {
  if (width < bounds_.min_width || width > bounds_.max_width || k < bounds_.min_k || k > bounds_.max_k) {
    throw std::out_of_range("CostModel::bu_energy_pj: outside LUT grid");
  }
  const int ks = bounds_.max_k - bounds_.min_k + 1;
  return lut_[static_cast<std::size_t>(width - bounds_.min_width) * ks +
              static_cast<std::size_t>(k - bounds_.min_k)];
}

double CostModel::energy_per_transform_pj(const DesignPoint& p) const {
  const int stages = hemath::log2_exact(m_);
  if (p.stage_widths.size() != static_cast<std::size_t>(stages)) {
    throw std::invalid_argument("CostModel: point stage count mismatch");
  }
  const double bflies_per_stage = static_cast<double>(m_ / 2);
  double total = 0.0;
  for (int s = 0; s < stages; ++s) {
    total += bflies_per_stage * bu_energy_pj(p.stage_widths[static_cast<std::size_t>(s)], p.twiddle_k);
  }
  return total;
}

double CostModel::normalized_power(const DesignPoint& p) const {
  const int stages = hemath::log2_exact(m_);
  const double fp_total = static_cast<double>(m_ / 2) * stages * fp_reference_pj_;
  return energy_per_transform_pj(p) / fp_total;
}

}  // namespace flash::dse
