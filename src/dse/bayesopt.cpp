#include "dse/bayesopt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dse/safety.hpp"

namespace flash::dse {

double GaussianProcess::kernel(const std::vector<double>& a, const std::vector<double>& b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return signal_var_ * std::exp(-d2 / (2.0 * length_scale_ * length_scale_));
}

void GaussianProcess::fit(std::vector<std::vector<double>> x, std::vector<double> y) {
  if (x.size() != y.size() || x.empty()) throw std::invalid_argument("GaussianProcess::fit: bad data");
  x_ = std::move(x);
  const std::size_t n = x_.size();
  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(n);

  // K + noise*I, lower Cholesky.
  chol_.assign(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> k(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) k[i][j] = k[j][i] = kernel(x_[i], x_[j]);
    k[i][i] += noise_var_ + 1e-10;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = k[i][j];
      for (std::size_t l = 0; l < j; ++l) sum -= chol_[i][l] * chol_[j][l];
      if (i == j) {
        chol_[i][i] = std::sqrt(std::max(sum, 1e-12));
      } else {
        chol_[i][j] = sum / chol_[j][j];
      }
    }
  }
  // alpha = K^-1 (y - mean) via forward/back substitution.
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = y[i] - y_mean_;
    for (std::size_t l = 0; l < i; ++l) sum -= chol_[i][l] * z[l];
    z[i] = sum / chol_[i][i];
  }
  alpha_.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t l = ii + 1; l < n; ++l) sum -= chol_[l][ii] * alpha_[l];
    alpha_[ii] = sum / chol_[ii][ii];
  }
}

GaussianProcess::Prediction GaussianProcess::predict(const std::vector<double>& x) const {
  if (!fitted()) throw std::logic_error("GaussianProcess::predict before fit");
  const std::size_t n = x_.size();
  std::vector<double> kx(n);
  for (std::size_t i = 0; i < n; ++i) kx[i] = kernel(x, x_[i]);
  Prediction out;
  out.mean = y_mean_;
  for (std::size_t i = 0; i < n; ++i) out.mean += kx[i] * alpha_[i];
  // v = L^-1 kx; var = k(x,x) - v.v
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = kx[i];
    for (std::size_t l = 0; l < i; ++l) sum -= chol_[i][l] * v[l];
    v[i] = sum / chol_[i][i];
  }
  double vv = 0.0;
  for (double e : v) vv += e * e;
  out.variance = std::max(kernel(x, x) - vv, 1e-12);
  return out;
}

BayesianExplorer::BayesianExplorer(DesignSpace space, ErrorModel error_model, CostModel cost_model,
                                   std::uint64_t seed)
    : space_(std::move(space)), error_model_(std::move(error_model)),
      cost_model_(std::move(cost_model)), rng_(seed) {}

std::vector<double> BayesianExplorer::normalize(const DesignPoint& p) const {
  const auto& b = space_.bounds();
  std::vector<double> x;
  x.reserve(p.stage_widths.size() + 1);
  for (int w : p.stage_widths) {
    x.push_back(static_cast<double>(w - b.min_width) / static_cast<double>(b.max_width - b.min_width));
  }
  x.push_back(static_cast<double>(p.twiddle_k - b.min_k) / static_cast<double>(b.max_k - b.min_k));
  return x;
}

std::vector<EvaluatedPoint> BayesianExplorer::explore(const BayesOptions& options) {
  std::vector<EvaluatedPoint> all;
  all.reserve(options.evaluations);

  auto evaluate = [&](const DesignPoint& p) {
    EvaluatedPoint e;
    e.point = p;
    e.error_variance = error_model_.predict_variance(space_, p);
    e.normalized_power = cost_model_.normalized_power(p);
    all.push_back(e);
    return e;
  };

  // Same admission rule as the evolutionary explorer: only points the
  // interval analyzer proves overflow-free (and, with options.pipeline,
  // certified for correct decryption) are evaluated; unprovable draws are
  // resampled so the evaluation budget stays exact.
  SafetyCache safety(space_, error_model_, options.pipeline);
  if (!safety.proven_safe(space_.full_precision())) {
    throw std::runtime_error(
        "BayesianExplorer::explore: even the full-precision corner cannot be proven "
        "overflow-free for this input bound");
  }
  constexpr int kMaxDraws = 64;
  auto safe_random = [&]() {
    for (int draw = 0; draw < kMaxDraws; ++draw) {
      DesignPoint p = space_.random(rng_);
      if (safety.proven_safe(p)) return p;
    }
    return space_.full_precision();
  };

  for (std::size_t i = 0; i < options.initial_random && all.size() < options.evaluations; ++i) {
    evaluate(safe_random());
  }

  std::uniform_real_distribution<double> unit(0.0, 1.0);
  while (all.size() < options.evaluations) {
    // ParEGO: random Chebyshev scalarization of (log error, power), both
    // normalized to the observed ranges; smaller is better.
    double lo_e = 1e300, hi_e = -1e300, lo_p = 1e300, hi_p = -1e300;
    for (const auto& e : all) {
      const double le = std::log10(std::max(e.error_variance, options.error_floor));
      lo_e = std::min(lo_e, le);
      hi_e = std::max(hi_e, le);
      lo_p = std::min(lo_p, e.normalized_power);
      hi_p = std::max(hi_p, e.normalized_power);
    }
    const double lambda = unit(rng_);
    auto scalarize = [&](double err_var, double power) {
      const double le = (std::log10(std::max(err_var, options.error_floor)) - lo_e) /
                        std::max(hi_e - lo_e, 1e-9);
      const double pw = (power - lo_p) / std::max(hi_p - lo_p, 1e-9);
      return std::max(lambda * le, (1.0 - lambda) * pw) + 0.05 * (lambda * le + (1.0 - lambda) * pw);
    };

    // GP training set: most recent evaluations (the surrogate is local).
    const std::size_t train = std::min(options.max_train_points, all.size());
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    xs.reserve(train);
    double best_y = 1e300;
    for (std::size_t i = all.size() - train; i < all.size(); ++i) {
      xs.push_back(normalize(all[i].point));
      ys.push_back(scalarize(all[i].error_variance, all[i].normalized_power));
      best_y = std::min(best_y, ys.back());
    }
    GaussianProcess gp(0.35, 0.5, 1e-4);
    gp.fit(std::move(xs), std::move(ys));

    // Candidate pool: random + mutations of the current non-dominated set.
    // Safety is checked lazily — only when a candidate would become the EI
    // incumbent — so the analyzer runs O(log pool) times per iteration.
    const auto front = pareto_front(all);
    DesignPoint best_candidate = safe_random();
    double best_ei = -1.0;
    for (std::size_t c = 0; c < options.candidate_pool; ++c) {
      DesignPoint cand;
      if (!front.empty() && (c & 1)) {
        cand = space_.mutate(front[rng_() % front.size()].point, rng_);
      } else {
        cand = space_.random(rng_);
      }
      const auto pred = gp.predict(normalize(cand));
      const double sigma = std::sqrt(pred.variance);
      // Expected improvement over the incumbent scalarized best.
      const double z = (best_y - pred.mean) / sigma;
      const double phi = std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979);
      const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
      const double ei = (best_y - pred.mean) * cdf + sigma * phi;
      if (ei > best_ei && safety.proven_safe(cand)) {
        best_ei = ei;
        best_candidate = cand;
      }
    }
    evaluate(best_candidate);
  }
  return all;
}

}  // namespace flash::dse
