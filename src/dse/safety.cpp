#include "dse/safety.hpp"

namespace flash::dse {

analysis::AnalysisResult analyze_design_point(const DesignSpace& space, const ErrorModel& model,
                                              const DesignPoint& point) {
  const fft::FxpFftConfig cfg = space.to_config(point, model.input_max_abs());
  analysis::AnalyzerOptions opts;
  opts.input_max_abs = model.coefficient_max_abs();
  return analysis::analyze_negacyclic(2 * space.fft_size(), cfg, opts);
}

bool design_point_proven_safe(const DesignSpace& space, const ErrorModel& model,
                              const DesignPoint& point) {
  return analyze_design_point(space, model, point).overflow_free();
}

bool SafetyCache::proven_safe(const DesignPoint& point) {
  const auto key = std::make_pair(point.stage_widths, point.twiddle_k);
  const auto it = verdicts_.find(key);
  if (it != verdicts_.end()) return it->second;
  const bool safe = design_point_proven_safe(space_, model_, point);
  verdicts_.emplace(key, safe);
  return safe;
}

}  // namespace flash::dse
