#include "dse/safety.hpp"

#include <cmath>
#include <stdexcept>

namespace flash::dse {

analysis::AnalysisResult analyze_design_point(const DesignSpace& space, const ErrorModel& model,
                                              const DesignPoint& point) {
  const fft::FxpFftConfig cfg = space.to_config(point, model.input_max_abs());
  analysis::AnalyzerOptions opts;
  opts.input_max_abs = model.coefficient_max_abs();
  return analysis::analyze_negacyclic(2 * space.fft_size(), cfg, opts);
}

bool design_point_proven_safe(const DesignSpace& space, const ErrorModel& model,
                              const DesignPoint& point) {
  return analyze_design_point(space, model, point).overflow_free();
}

analysis::PipelineCertificate certify_design_point(const DesignSpace& space,
                                                   const ErrorModel& model,
                                                   const PipelineObligation& obligation,
                                                   const DesignPoint& point) {
  if (obligation.params.n != 2 * space.fft_size()) {
    throw std::invalid_argument(
        "certify_design_point: obligation ring degree does not match the design space "
        "(params.n must be 2 * fft_size)");
  }
  analysis::HConvUnitDesc desc;
  desc.params = obligation.params;
  desc.backend = bfv::PolyMulBackend::kApproxFft;
  desc.approx_config = space.to_config(point, model.input_max_abs());
  desc.in_c = obligation.in_c;
  desc.in_h = obligation.in_h;
  desc.in_w = obligation.in_w;
  desc.weights = tensor::Tensor4(1, obligation.in_c, obligation.kernel_h, obligation.kernel_w);
  const auto w = static_cast<tensor::i64>(std::llround(obligation.max_w));
  for (auto& v : desc.weights.data()) v = w;
  return analysis::certify_hconv_unit(desc);
}

bool SafetyCache::proven_safe(const DesignPoint& point) {
  const auto key = std::make_pair(point.stage_widths, point.twiddle_k);
  const auto it = verdicts_.find(key);
  if (it != verdicts_.end()) return it->second;
  bool safe = design_point_proven_safe(space_, model_, point);
  if (safe && obligation_.has_value()) {
    safe = certify_design_point(space_, model_, *obligation_, point).verdict ==
           analysis::PipelineVerdict::kProvenCorrectDecryption;
  }
  verdicts_.emplace(key, safe);
  return safe;
}

bool SafetyCache::proven_wrap_free(int k) {
  if (!pow2_obligation_.has_value()) {
    throw std::logic_error("SafetyCache::proven_wrap_free: no Pow2Obligation attached");
  }
  const auto it = pow2_verdicts_.find(k);
  if (it != pow2_verdicts_.end()) return it->second;
  const bool safe = analysis::analyze_pow2_polymul(*pow2_obligation_, k).wrap_free;
  pow2_verdicts_.emplace(k, safe);
  return safe;
}

}  // namespace flash::dse
