// Bayesian optimization for the approximate-FFT design space.
//
// The paper "leverage[s] Bayesian optimization algorithms to solve the
// optimization problem iteratively" (Fig. 10). This is a faithful
// lightweight implementation: a Gaussian-process surrogate with an RBF
// kernel over the normalized design vector, ParEGO-style random Chebyshev
// scalarization of the two objectives (log error variance, normalized
// power), and expected-improvement acquisition maximized over a candidate
// pool of random points and mutations of the incumbent front.
//
// The evolutionary explorer (optimizer.hpp) remains the fast default; this
// module exists to reproduce the paper's search procedure and to compare
// sample efficiency (bench_fig11bc_dse).
#pragma once

#include "dse/optimizer.hpp"

namespace flash::dse {

/// Exact GP regression with an RBF kernel (squared exponential), for small
/// training sets (O(n^3) Cholesky).
class GaussianProcess {
 public:
  GaussianProcess(double length_scale, double signal_var, double noise_var)
      : length_scale_(length_scale), signal_var_(signal_var), noise_var_(noise_var) {}

  /// Fit on design vectors (rows of x) and targets y.
  void fit(std::vector<std::vector<double>> x, std::vector<double> y);

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };
  Prediction predict(const std::vector<double>& x) const;

  bool fitted() const { return !x_.empty(); }

 private:
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  double length_scale_, signal_var_, noise_var_;
  std::vector<std::vector<double>> x_;
  std::vector<double> alpha_;              // K^-1 (y - mean)
  std::vector<std::vector<double>> chol_;  // lower Cholesky factor of K
  double y_mean_ = 0.0;
};

struct BayesOptions {
  std::size_t evaluations = 200;
  std::size_t initial_random = 24;
  std::size_t candidate_pool = 160;
  std::size_t max_train_points = 128;  // subsample the GP's training set
  double error_floor = 1e-18;          // clamps log(error) targets
  /// Same end-to-end admission requirement as DseOptions::pipeline.
  std::optional<PipelineObligation> pipeline;
};

class BayesianExplorer {
 public:
  BayesianExplorer(DesignSpace space, ErrorModel error_model, CostModel cost_model,
                   std::uint64_t seed);

  /// Run the search; returns every truly-evaluated point.
  std::vector<EvaluatedPoint> explore(const BayesOptions& options);

 private:
  std::vector<double> normalize(const DesignPoint& p) const;

  DesignSpace space_;
  ErrorModel error_model_;
  CostModel cost_model_;
  std::mt19937_64 rng_;
};

}  // namespace flash::dse
