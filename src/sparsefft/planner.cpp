#include "sparsefft/planner.hpp"

#include <stdexcept>

#include "hemath/bitrev.hpp"

namespace flash::sparsefft {

bool is_trivial_twiddle(std::size_t twiddle_index, std::size_t m) {
  return twiddle_index == 0 || twiddle_index == m / 4;
}

namespace {

/// Lazy-materialization state for the merged cost accounting.
enum class MergeState : std::uint8_t {
  kZero,    // no data
  kMat,     // holds a concrete value (source or full-butterfly output)
  kLazyId,  // +/-i^j times a concrete value: free to materialize
  kLazy,    // W_cum times a concrete value: one mult to materialize
};

/// Cost (0 or 1 mult) of producing W * value from a state, folding W into the
/// pending twiddle product; `trivial` marks W in {1, i}.
std::uint64_t materialize_with_twiddle(MergeState s, bool trivial) {
  switch (s) {
    case MergeState::kZero:
      return 0;
    case MergeState::kMat:
    case MergeState::kLazyId:
      return trivial ? 0 : 1;
    case MergeState::kLazy:
      return 1;  // source * (W_cum * W): still a single multiplication
  }
  return 0;
}

/// State after multiplying by W without materializing.
MergeState defer_twiddle(MergeState s, bool trivial) {
  if (s == MergeState::kZero) return MergeState::kZero;
  if (trivial) {
    // Powers of i are sign/swap games: kMat stays free to use, lazy states
    // keep their class.
    return s == MergeState::kMat ? MergeState::kLazyId : s;
  }
  return MergeState::kLazy;
}

}  // namespace

SparseFftPlan::SparseFftPlan(std::size_t m, const SparsityPattern& pattern) : m_(m) {
  if (pattern.size() != m) throw std::invalid_argument("SparseFftPlan: pattern size mismatch");
  const int log_m = hemath::log2_exact(m);
  stage_ops_.resize(static_cast<std::size_t>(log_m));

  // Activity of the in-place work array, starting from the bit-reversed input.
  const SparsityPattern br = pattern.bit_reversed();
  std::vector<bool> active(m);
  std::vector<MergeState> merge(m, MergeState::kZero);
  for (std::size_t i = 0; i < m; ++i) {
    active[i] = br.is_active(i);
    if (active[i]) merge[i] = MergeState::kMat;
  }

  for (int s = 1; s <= log_m; ++s) {
    auto& ops = stage_ops_[static_cast<std::size_t>(s - 1)];
    const std::size_t half = std::size_t{1} << (s - 1);
    const std::size_t len = half << 1;
    const std::size_t stride = m >> s;
    for (std::size_t block = 0; block < m; block += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const std::size_t iu = block + j;
        const std::size_t iv = iu + half;
        const bool au = active[iu];
        const bool av = active[iv];
        if (!au && !av) continue;  // dead butterfly: nothing scheduled
        ButterflyOp op;
        op.u = static_cast<std::uint32_t>(iu);
        op.v = static_cast<std::uint32_t>(iv);
        op.twiddle_index = static_cast<std::uint32_t>(j * stride);
        const bool trivial = is_trivial_twiddle(op.twiddle_index, m);
        if (au && av) {
          op.kind = OpKind::kFull;
          if (trivial) {
            ++cost_.trivial_mults;
          } else {
            ++cost_.complex_mults;
          }
          cost_.complex_adds += 2;
          // Merged accounting: both operands must materialize here.
          cost_.merged_mults += materialize_with_twiddle(merge[iu], true);
          cost_.merged_mults += materialize_with_twiddle(merge[iv], trivial);
          cost_.merged_adds += 2;
          merge[iu] = MergeState::kMat;
          merge[iv] = MergeState::kMat;
        } else if (!au) {
          // Merging path: bottom-only input, outputs (+Wv, -Wv).
          op.kind = OpKind::kMulOnly;
          if (trivial) {
            ++cost_.trivial_mults;
          } else {
            ++cost_.complex_mults;
          }
          const MergeState next = defer_twiddle(merge[iv], trivial);
          merge[iu] = next;
          merge[iv] = next;  // additive inverse: sign flip is free
        } else {
          // Skipping path: top-only input duplicates downward.
          op.kind = OpKind::kCopy;
          ++cost_.copies;
          merge[iv] = merge[iu];
        }
        ops.push_back(op);
        active[iu] = true;
        active[iv] = true;
      }
    }
  }

  // Transform outputs that are still lazy pay their deferred multiplication.
  for (std::size_t i = 0; i < m; ++i) {
    if (merge[i] == MergeState::kLazy) ++cost_.merged_mults;
  }
}

PlanCost SparseFftPlan::dense_cost(std::size_t m) {
  PlanCost cost;
  const int log_m = hemath::log2_exact(m);
  for (int s = 1; s <= log_m; ++s) {
    const std::size_t half = std::size_t{1} << (s - 1);
    const std::size_t stride = m >> s;
    const std::size_t blocks = m / (half << 1);
    for (std::size_t j = 0; j < half; ++j) {
      const bool trivial = is_trivial_twiddle(j * stride, m);
      if (trivial) {
        cost.trivial_mults += blocks;
      } else {
        cost.complex_mults += blocks;
      }
      cost.complex_adds += 2 * blocks;
    }
  }
  // A dense transform has no single-source chains: merged == per-stage.
  cost.merged_mults = cost.complex_mults;
  cost.merged_adds = cost.complex_adds;
  return cost;
}

}  // namespace flash::sparsefft
