#include "sparsefft/executor.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "hemath/bitrev.hpp"
#include "sparsefft/merged_kernels.hpp"

namespace flash::sparsefft {

namespace {

cplx grid_round(cplx v, int frac_bits) {
  return {std::ldexp(std::nearbyint(std::ldexp(v.real(), frac_bits)), -frac_bits),
          std::ldexp(std::nearbyint(std::ldexp(v.imag(), frac_bits)), -frac_bits)};
}

template <typename TwiddleFn, typename RoundFn>
void run_into(const SparseFftPlan& plan, std::span<const cplx> input, std::span<cplx> a,
              TwiddleFn&& twiddle_of, RoundFn&& round_stage) {
  const std::size_t m = plan.size();
  if (input.size() != m) throw std::invalid_argument("sparsefft::execute: size mismatch");
  if (a.size() != m) throw std::invalid_argument("sparsefft::execute: bad output size");
  std::copy(input.begin(), input.end(), a.begin());
  hemath::bit_reverse_permute(a);
  for (int s = 0; s < plan.stages(); ++s) {
    for (const ButterflyOp& op : plan.stage(s)) {
      cplx& u = a[op.u];
      cplx& v = a[op.v];
      switch (op.kind) {
        case OpKind::kFull: {
          const cplx t = v * twiddle_of(op.twiddle_index);
          v = round_stage(u - t, s);
          u = round_stage(u + t, s);
          break;
        }
        case OpKind::kMulOnly: {
          const cplx t = round_stage(v * twiddle_of(op.twiddle_index), s);
          u = t;
          v = -t;
          break;
        }
        case OpKind::kCopy:
          v = u;
          break;
      }
    }
  }
}

}  // namespace

void execute_into(const SparseFftPlan& plan, std::span<const cplx> input, std::span<cplx> out) {
  const std::size_t m = plan.size();
  const double base = 2.0 * std::numbers::pi / static_cast<double>(m);
  auto twiddle_of = [base](std::uint32_t t) { return std::polar(1.0, base * static_cast<double>(t)); };
  auto no_round = [](cplx v, int) { return v; };
  run_into(plan, input, out, twiddle_of, no_round);
}

std::vector<cplx> execute(const SparseFftPlan& plan, const std::vector<cplx>& input) {
  std::vector<cplx> out(plan.size());
  execute_into(plan, input, out);
  return out;
}

namespace {

/// A value that may still owe a twiddle multiplication. `quadrant` holds an
/// extra factor i^quadrant applied exactly (swap/negate — free in hardware);
/// `twiddle` holds the deferred non-trivial factor when `lazy` is set.
struct LazyValue {
  cplx base{0.0, 0.0};
  cplx twiddle{1.0, 0.0};
  int quadrant = 0;  // base is additionally multiplied by i^quadrant
  bool lazy = false; // true: a non-trivial twiddle is pending

  static cplx rotate(cplx v, int quadrant) {
    switch (quadrant & 3) {
      case 0: return v;
      case 1: return {-v.imag(), v.real()};
      case 2: return -v;
      default: return {v.imag(), -v.real()};
    }
  }

  cplx materialize(std::uint64_t& mults) const {
    cplx v = rotate(base, quadrant);
    if (lazy) {
      v *= twiddle;
      ++mults;
    }
    return v;
  }
};

}  // namespace

std::vector<cplx> execute_merged(const SparseFftPlan& plan, const std::vector<cplx>& input,
                                 std::uint64_t* mults_issued) {
  const std::size_t m = plan.size();
  if (input.size() != m) throw std::invalid_argument("execute_merged: size mismatch");
  const double base_angle = 2.0 * std::numbers::pi / static_cast<double>(m);

  std::vector<cplx> init = input;
  hemath::bit_reverse_permute(init);

  // Lazy-value state in SoA form so the dense final materialization can run
  // on the vector kernel (merged_kernels.hpp). The sparse op loop still
  // thinks in whole LazyValues through these load/store shims — it touches
  // few lanes per stage and is not worth vectorizing.
  std::vector<double> base_re(m), base_im(m);
  std::vector<double> tw_re(m, 1.0), tw_im(m, 0.0);
  std::vector<std::uint64_t> quadrant(m, 0), lazy_flag(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    base_re[i] = init[i].real();
    base_im[i] = init[i].imag();
  }
  auto load = [&](std::size_t i) {
    return LazyValue{{base_re[i], base_im[i]},
                     {tw_re[i], tw_im[i]},
                     static_cast<int>(quadrant[i]),
                     lazy_flag[i] != 0};
  };
  auto store = [&](std::size_t i, const LazyValue& val) {
    base_re[i] = val.base.real();
    base_im[i] = val.base.imag();
    tw_re[i] = val.twiddle.real();
    tw_im[i] = val.twiddle.imag();
    quadrant[i] = static_cast<std::uint64_t>(val.quadrant) & 3;
    lazy_flag[i] = val.lazy ? 1 : 0;
  };

  std::uint64_t mults = 0;
  for (int s = 0; s < plan.stages(); ++s) {
    for (const ButterflyOp& op : plan.stage(s)) {
      const bool trivial = is_trivial_twiddle(op.twiddle_index, m);
      switch (op.kind) {
        case OpKind::kFull: {
          // Materialize u; fold this stage's twiddle into v, then materialize.
          const cplx uv = load(op.u).materialize(mults);
          cplx tv;
          if (trivial) {
            // W in {1, i}: exact quadrant rotation, no multiplication.
            LazyValue vv = load(op.v);
            if (op.twiddle_index != 0) vv.quadrant += 1;
            tv = vv.materialize(mults);
          } else {
            LazyValue vv = load(op.v);
            vv.twiddle *= std::polar(1.0, base_angle * static_cast<double>(op.twiddle_index));
            vv.lazy = true;
            tv = vv.materialize(mults);
          }
          store(op.u, LazyValue{uv + tv, {1.0, 0.0}, 0, false});
          store(op.v, LazyValue{uv - tv, {1.0, 0.0}, 0, false});
          break;
        }
        case OpKind::kMulOnly: {
          // Outputs (+Wv, -Wv): defer the twiddle, sign flips are free.
          LazyValue next = load(op.v);
          if (trivial) {
            if (op.twiddle_index != 0) next.quadrant += 1;
          } else {
            next.twiddle *= std::polar(1.0, base_angle * static_cast<double>(op.twiddle_index));
            next.lazy = true;
          }
          store(op.u, next);
          next.quadrant += 2;  // additive inverse
          store(op.v, next);
          break;
        }
        case OpKind::kCopy:
          store(op.v, load(op.u));
          break;
      }
    }
  }

  // Dense settlement of every lane: vectorized (scalar/AVX2/AVX-512,
  // bit-identical across levels).
  std::vector<cplx> out(m);
  mults += detail::merged_materialize(base_re.data(), base_im.data(), tw_re.data(), tw_im.data(),
                                      quadrant.data(), lazy_flag.data(), m, out.data());
  if (mults_issued) *mults_issued = mults;
  return out;
}

std::vector<cplx> execute_quantized(const SparseFftPlan& plan, const std::vector<cplx>& input,
                                    const QuantizedExecution& quant) {
  const std::size_t m = plan.size();
  if (quant.stage_frac_bits.size() != static_cast<std::size_t>(plan.stages())) {
    throw std::invalid_argument("execute_quantized: stage_frac_bits size mismatch");
  }
  const auto table = fft::quantize_fft_twiddles(m, +1, quant.twiddle_k, quant.twiddle_min_exp);
  auto twiddle_of = [&table](std::uint32_t t) { return table[t].value(); };
  auto round_stage = [&quant](cplx v, int s) {
    return grid_round(v, quant.stage_frac_bits[static_cast<std::size_t>(s)]);
  };
  std::vector<cplx> out(m);
  run_into(plan, input, out, twiddle_of, round_stage);
  return out;
}

}  // namespace flash::sparsefft
