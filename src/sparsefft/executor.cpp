#include "sparsefft/executor.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "hemath/bitrev.hpp"

namespace flash::sparsefft {

namespace {

cplx grid_round(cplx v, int frac_bits) {
  return {std::ldexp(std::nearbyint(std::ldexp(v.real(), frac_bits)), -frac_bits),
          std::ldexp(std::nearbyint(std::ldexp(v.imag(), frac_bits)), -frac_bits)};
}

template <typename TwiddleFn, typename RoundFn>
void run_into(const SparseFftPlan& plan, std::span<const cplx> input, std::span<cplx> a,
              TwiddleFn&& twiddle_of, RoundFn&& round_stage) {
  const std::size_t m = plan.size();
  if (input.size() != m) throw std::invalid_argument("sparsefft::execute: size mismatch");
  if (a.size() != m) throw std::invalid_argument("sparsefft::execute: bad output size");
  std::copy(input.begin(), input.end(), a.begin());
  hemath::bit_reverse_permute(a);
  for (int s = 0; s < plan.stages(); ++s) {
    for (const ButterflyOp& op : plan.stage(s)) {
      cplx& u = a[op.u];
      cplx& v = a[op.v];
      switch (op.kind) {
        case OpKind::kFull: {
          const cplx t = v * twiddle_of(op.twiddle_index);
          v = round_stage(u - t, s);
          u = round_stage(u + t, s);
          break;
        }
        case OpKind::kMulOnly: {
          const cplx t = round_stage(v * twiddle_of(op.twiddle_index), s);
          u = t;
          v = -t;
          break;
        }
        case OpKind::kCopy:
          v = u;
          break;
      }
    }
  }
}

}  // namespace

void execute_into(const SparseFftPlan& plan, std::span<const cplx> input, std::span<cplx> out) {
  const std::size_t m = plan.size();
  const double base = 2.0 * std::numbers::pi / static_cast<double>(m);
  auto twiddle_of = [base](std::uint32_t t) { return std::polar(1.0, base * static_cast<double>(t)); };
  auto no_round = [](cplx v, int) { return v; };
  run_into(plan, input, out, twiddle_of, no_round);
}

std::vector<cplx> execute(const SparseFftPlan& plan, const std::vector<cplx>& input) {
  std::vector<cplx> out(plan.size());
  execute_into(plan, input, out);
  return out;
}

namespace {

/// A value that may still owe a twiddle multiplication. `quadrant` holds an
/// extra factor i^quadrant applied exactly (swap/negate — free in hardware);
/// `twiddle` holds the deferred non-trivial factor when `lazy` is set.
struct LazyValue {
  cplx base{0.0, 0.0};
  cplx twiddle{1.0, 0.0};
  int quadrant = 0;  // base is additionally multiplied by i^quadrant
  bool lazy = false; // true: a non-trivial twiddle is pending

  static cplx rotate(cplx v, int quadrant) {
    switch (quadrant & 3) {
      case 0: return v;
      case 1: return {-v.imag(), v.real()};
      case 2: return -v;
      default: return {v.imag(), -v.real()};
    }
  }

  cplx materialize(std::uint64_t& mults) const {
    cplx v = rotate(base, quadrant);
    if (lazy) {
      v *= twiddle;
      ++mults;
    }
    return v;
  }
};

}  // namespace

std::vector<cplx> execute_merged(const SparseFftPlan& plan, const std::vector<cplx>& input,
                                 std::uint64_t* mults_issued) {
  const std::size_t m = plan.size();
  if (input.size() != m) throw std::invalid_argument("execute_merged: size mismatch");
  const double base_angle = 2.0 * std::numbers::pi / static_cast<double>(m);

  std::vector<cplx> init = input;
  hemath::bit_reverse_permute(init);
  std::vector<LazyValue> vals(m);
  for (std::size_t i = 0; i < m; ++i) vals[i].base = init[i];

  std::uint64_t mults = 0;
  for (int s = 0; s < plan.stages(); ++s) {
    for (const ButterflyOp& op : plan.stage(s)) {
      LazyValue& u = vals[op.u];
      LazyValue& v = vals[op.v];
      const bool trivial = is_trivial_twiddle(op.twiddle_index, m);
      switch (op.kind) {
        case OpKind::kFull: {
          // Materialize u; fold this stage's twiddle into v, then materialize.
          const cplx uv = u.materialize(mults);
          cplx tv;
          if (trivial) {
            // W in {1, i}: exact quadrant rotation, no multiplication.
            LazyValue vv = v;
            if (op.twiddle_index != 0) vv.quadrant += 1;
            tv = vv.materialize(mults);
          } else {
            LazyValue vv = v;
            vv.twiddle *= std::polar(1.0, base_angle * static_cast<double>(op.twiddle_index));
            vv.lazy = true;
            tv = vv.materialize(mults);
          }
          u = LazyValue{uv + tv, {1.0, 0.0}, 0, false};
          v = LazyValue{uv - tv, {1.0, 0.0}, 0, false};
          break;
        }
        case OpKind::kMulOnly: {
          // Outputs (+Wv, -Wv): defer the twiddle, sign flips are free.
          LazyValue next = v;
          if (trivial) {
            if (op.twiddle_index != 0) next.quadrant += 1;
          } else {
            next.twiddle *= std::polar(1.0, base_angle * static_cast<double>(op.twiddle_index));
            next.lazy = true;
          }
          u = next;
          v = next;
          v.quadrant += 2;  // additive inverse
          break;
        }
        case OpKind::kCopy:
          v = u;
          break;
      }
    }
  }

  std::vector<cplx> out(m);
  for (std::size_t i = 0; i < m; ++i) out[i] = vals[i].materialize(mults);
  if (mults_issued) *mults_issued = mults;
  return out;
}

std::vector<cplx> execute_quantized(const SparseFftPlan& plan, const std::vector<cplx>& input,
                                    const QuantizedExecution& quant) {
  const std::size_t m = plan.size();
  if (quant.stage_frac_bits.size() != static_cast<std::size_t>(plan.stages())) {
    throw std::invalid_argument("execute_quantized: stage_frac_bits size mismatch");
  }
  const auto table = fft::quantize_fft_twiddles(m, +1, quant.twiddle_k, quant.twiddle_min_exp);
  auto twiddle_of = [&table](std::uint32_t t) { return table[t].value(); };
  auto round_stage = [&quant](cplx v, int s) {
    return grid_round(v, quant.stage_frac_bits[static_cast<std::size_t>(s)]);
  };
  std::vector<cplx> out(m);
  run_into(plan, input, out, twiddle_of, round_stage);
  return out;
}

}  // namespace flash::sparsefft
