#include "sparsefft/pattern.hpp"

#include <algorithm>
#include <stdexcept>

#include "hemath/bitrev.hpp"

namespace flash::sparsefft {

SparsityPattern::SparsityPattern(std::size_t n, std::vector<std::size_t> nonzero_positions)
    : n_(n), nonzeros_(std::move(nonzero_positions)), active_(n, false) {
  std::sort(nonzeros_.begin(), nonzeros_.end());
  nonzeros_.erase(std::unique(nonzeros_.begin(), nonzeros_.end()), nonzeros_.end());
  for (std::size_t i : nonzeros_) {
    if (i >= n_) throw std::out_of_range("SparsityPattern: position out of range");
    active_[i] = true;
  }
}

double SparsityPattern::sparsity() const {
  if (n_ == 0) return 0.0;
  return 1.0 - static_cast<double>(nonzeros_.size()) / static_cast<double>(n_);
}

SparsityPattern SparsityPattern::bit_reversed() const {
  const int bits = hemath::log2_exact(n_);
  std::vector<std::size_t> nz;
  nz.reserve(nonzeros_.size());
  for (std::size_t i : nonzeros_) {
    nz.push_back(hemath::bit_reverse(static_cast<std::uint32_t>(i), bits));
  }
  return SparsityPattern(n_, std::move(nz));
}

PatternShape SparsityPattern::classify() const {
  if (nonzeros_.empty()) return PatternShape::kEmpty;
  // Contiguous prefix: nonzeros == {0, 1, ..., w-1}.
  if (nonzeros_.back() == nonzeros_.size() - 1) return PatternShape::kContiguous;
  if (nonzeros_.size() == 1) return PatternShape::kScattered;
  // Uniform spacing with no adjacency.
  const std::size_t gap = nonzeros_[1] - nonzeros_[0];
  if (gap > 1) {
    bool uniform = true;
    for (std::size_t i = 2; i < nonzeros_.size(); ++i) {
      if (nonzeros_[i] - nonzeros_[i - 1] != gap) {
        uniform = false;
        break;
      }
    }
    if (uniform) return PatternShape::kScattered;
  }
  return PatternShape::kMixed;
}

}  // namespace flash::sparsefft
