// AVX2 merged-materialize kernel: four lazy values settled per pass.
// Compiled with -mavx2 in its own TU; dispatch (merged_kernels.cpp) only
// calls it when the active level grants AVX2.
//
// Rotation by i^(q&3) is a pair of mask blends over {re, im, -re, -im} —
// negation is a sign-bit xor, exactly the scalar FP negation. The deferred
// twiddle product is computed unconditionally with the naive (ac-bd, ad+bc)
// formula (no FMA: the library builds with -ffp-contract=off) and blended in
// by the lazy mask, so non-lazy lanes pass the rotated value through
// untouched. Bit-identical to merged_materialize_scalar per lane.
#include "sparsefft/merged_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace flash::sparsefft::detail {

std::uint64_t merged_materialize_avx2(const double* base_re, const double* base_im,
                                      const double* tw_re, const double* tw_im,
                                      const std::uint64_t* quadrant, const std::uint64_t* lazy,
                                      std::size_t m, cplx* out) {
  const std::size_t vec = m & ~std::size_t{3};
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256i three = _mm256_set1_epi64x(3);
  std::uint64_t mults = 0;

  for (std::size_t i = 0; i < vec; i += 4) {
    const __m256d re = _mm256_loadu_pd(base_re + i);
    const __m256d im = _mm256_loadu_pd(base_im + i);
    const __m256d neg_re = _mm256_xor_pd(re, sign);
    const __m256d neg_im = _mm256_xor_pd(im, sign);

    const __m256i q = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(quadrant + i)), three);
    const __m256d q1 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(q, _mm256_set1_epi64x(1)));
    const __m256d q2 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(q, _mm256_set1_epi64x(2)));
    const __m256d q3 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(q, three));

    __m256d rot_re = re;
    rot_re = _mm256_blendv_pd(rot_re, neg_im, q1);
    rot_re = _mm256_blendv_pd(rot_re, neg_re, q2);
    rot_re = _mm256_blendv_pd(rot_re, im, q3);
    __m256d rot_im = im;
    rot_im = _mm256_blendv_pd(rot_im, re, q1);
    rot_im = _mm256_blendv_pd(rot_im, neg_im, q2);
    rot_im = _mm256_blendv_pd(rot_im, neg_re, q3);

    const __m256d twr = _mm256_loadu_pd(tw_re + i);
    const __m256d twi = _mm256_loadu_pd(tw_im + i);
    const __m256d pr = _mm256_sub_pd(_mm256_mul_pd(rot_re, twr), _mm256_mul_pd(rot_im, twi));
    const __m256d pi = _mm256_add_pd(_mm256_mul_pd(rot_re, twi), _mm256_mul_pd(rot_im, twr));

    const __m256d lz = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lazy + i)), _mm256_setzero_si256()));
    // lz flags NOT-lazy lanes; blendv picks the second operand where set.
    const __m256d out_re = _mm256_blendv_pd(pr, rot_re, lz);
    const __m256d out_im = _mm256_blendv_pd(pi, rot_im, lz);
    mults += 4u - static_cast<unsigned>(std::popcount(
                      static_cast<unsigned>(_mm256_movemask_pd(lz))));

    const __m256d lo = _mm256_unpacklo_pd(out_re, out_im);  // r0 i0 r2 i2
    const __m256d hi = _mm256_unpackhi_pd(out_re, out_im);  // r1 i1 r3 i3
    double* dst = reinterpret_cast<double*>(out + i);
    _mm256_storeu_pd(dst, _mm256_permute2f128_pd(lo, hi, 0x20));
    _mm256_storeu_pd(dst + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
  }

  mults += merged_materialize_scalar(base_re + vec, base_im + vec, tw_re + vec, tw_im + vec,
                                     quadrant + vec, lazy + vec, m - vec, out + vec);
  return mults;
}

}  // namespace flash::sparsefft::detail

#else  // No AVX2 in this compiler/arch: unreachable stub (dispatch never selects it).

#include <cstdlib>

namespace flash::sparsefft::detail {
std::uint64_t merged_materialize_avx2(const double*, const double*, const double*, const double*,
                                      const std::uint64_t*, const std::uint64_t*, std::size_t,
                                      cplx*) {
  std::abort();
}
}  // namespace flash::sparsefft::detail

#endif
