// Sparsity patterns of coefficient-encoded weight polynomials (paper §III-B).
//
// After Cheetah encoding, a weight polynomial of degree N has at most k*k
// valid coefficients per H*W-sized channel stripe, so >90% of coefficients
// are zero, in one of two shapes after bit-reversal (paper Fig. 8):
//   * contiguous  — valid data occupies a prefix, enabling "skipping";
//   * scattered   — isolated valid values at uniform intervals, enabling
//                   "merging".
// This header captures the pattern and classifies it.
#pragma once

#include <cstddef>
#include <vector>

namespace flash::sparsefft {

enum class PatternShape {
  kEmpty,       // all-zero polynomial
  kContiguous,  // valid values form a prefix after bit-reversal
  kScattered,   // isolated valid values at uniform spacing after bit-reversal
  kMixed,       // anything else
};

/// The set of nonzero positions of a length-n sequence.
class SparsityPattern {
 public:
  SparsityPattern(std::size_t n, std::vector<std::size_t> nonzero_positions);

  /// Build from the coefficients themselves.
  template <typename T>
  static SparsityPattern from_values(const std::vector<T>& values) {
    std::vector<std::size_t> nz;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] != T{}) nz.push_back(i);
    }
    return SparsityPattern(values.size(), std::move(nz));
  }

  std::size_t size() const { return n_; }
  const std::vector<std::size_t>& nonzeros() const { return nonzeros_; }
  std::size_t weight() const { return nonzeros_.size(); }
  double sparsity() const;
  bool is_active(std::size_t i) const { return active_[i]; }

  /// The same pattern with indices bit-reverse permuted (what the butterfly
  /// network's first stage sees).
  SparsityPattern bit_reversed() const;

  /// Shape classification of *this* pattern (call on the bit-reversed one to
  /// match the paper's Fig. 8 discussion).
  PatternShape classify() const;

 private:
  std::size_t n_;
  std::vector<std::size_t> nonzeros_;  // sorted
  std::vector<bool> active_;
};

}  // namespace flash::sparsefft
