#include "sparsefft/merged_kernels.hpp"

#include "hemath/simd.hpp"

namespace flash::sparsefft::detail {

std::uint64_t merged_materialize_scalar(const double* base_re, const double* base_im,
                                        const double* tw_re, const double* tw_im,
                                        const std::uint64_t* quadrant, const std::uint64_t* lazy,
                                        std::size_t m, cplx* out) {
  std::uint64_t mults = 0;
  for (std::size_t i = 0; i < m; ++i) {
    double re;
    double im;
    switch (quadrant[i] & 3) {
      case 0: re = base_re[i]; im = base_im[i]; break;
      case 1: re = -base_im[i]; im = base_re[i]; break;
      case 2: re = -base_re[i]; im = -base_im[i]; break;
      default: re = base_im[i]; im = -base_re[i]; break;
    }
    if (lazy[i] != 0) {
      // Naive complex product — matches the vector kernels term for term
      // (contraction is disabled for this library, so no FMA on any path).
      const double pr = re * tw_re[i] - im * tw_im[i];
      const double pi = re * tw_im[i] + im * tw_re[i];
      re = pr;
      im = pi;
      ++mults;
    }
    out[i] = cplx{re, im};
  }
  return mults;
}

std::uint64_t merged_materialize(const double* base_re, const double* base_im, const double* tw_re,
                                 const double* tw_im, const std::uint64_t* quadrant,
                                 const std::uint64_t* lazy, std::size_t m, cplx* out) {
  using hemath::simd::SimdLevel;
  if (m >= 8 && hemath::simd::level_at_least(SimdLevel::kAvx512)) {
    return merged_materialize_avx512(base_re, base_im, tw_re, tw_im, quadrant, lazy, m, out);
  }
  if (m >= 4 && hemath::simd::level_at_least(SimdLevel::kAvx2)) {
    return merged_materialize_avx2(base_re, base_im, tw_re, tw_im, quadrant, lazy, m, out);
  }
  return merged_materialize_scalar(base_re, base_im, tw_re, tw_im, quadrant, lazy, m, out);
}

}  // namespace flash::sparsefft::detail
