// Executes a SparseFftPlan.
//
// The executor runs exactly the operations the planner scheduled — skipped
// butterflies are genuinely never touched — so its output agreeing with the
// dense FFT is the end-to-end proof that "skipping" and "merging" are exact
// (they are: zeros contribute nothing). A quantized execution mode applies
// CSD twiddles and per-stage grid rounding, modelling the combined
// sparse+approximate datapath of FLASH's approximate PEs.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "fft/complex_fft.hpp"
#include "fft/fxp_fft.hpp"
#include "sparsefft/planner.hpp"

namespace flash::sparsefft {

using fft::cplx;

/// Exact execution: standard-order input (only positions in the plan's
/// pattern are read; others are treated as zero), standard-order output.
/// Equivalent to FftPlan(m, +1).forward on the dense vector.
std::vector<cplx> execute(const SparseFftPlan& plan, const std::vector<cplx>& input);

/// Allocation-free exact execution: copies `input` into `out` (both size M,
/// non-aliasing) and runs the scheduled ops in place. No scratch needed.
void execute_into(const SparseFftPlan& plan, std::span<const cplx> input, std::span<cplx> out);

/// Quantized execution: twiddles replaced by their CSD approximations and
/// every produced value rounded to 2^-frac_bits grid per stage, modelling the
/// approximate BU datapath numerics on top of the sparse schedule.
struct QuantizedExecution {
  int twiddle_k = 5;
  int twiddle_min_exp = -20;
  std::vector<int> stage_frac_bits;  // size = log2(M)
};

std::vector<cplx> execute_quantized(const SparseFftPlan& plan, const std::vector<cplx>& input,
                                    const QuantizedExecution& quant);

/// Merged execution: values flowing through single-source butterfly chains
/// stay *lazy* — a (base value, accumulated twiddle) pair whose twiddle
/// product is tracked by exponent addition, exactly the paper's "summing
/// twiddle factor exponents". A complex multiplication is issued only when a
/// value materializes (two-input butterfly or transform output). The number
/// of multiplications issued equals the plan's merged_mults accounting —
/// asserted when `mults_issued` is provided — and the result matches the
/// dense FFT.
std::vector<cplx> execute_merged(const SparseFftPlan& plan, const std::vector<cplx>& input,
                                 std::uint64_t* mults_issued = nullptr);

}  // namespace flash::sparsefft
