// Vectorized final materialization of the merged sparse executor.
//
// execute_merged defers non-trivial twiddle multiplications through the
// butterfly network (sign flips and i-rotations stay symbolic); after the
// last stage every value still owes at most one rotation and one complex
// multiply. That settlement loop is dense — it touches all m lanes — and is
// the one vectorizable piece of an otherwise sparse/irregular executor, so
// it lives here behind the usual scalar/AVX2/AVX-512 dispatch.
//
// State is SoA: base (re/im), deferred twiddle (re/im), and 64-bit
// quadrant/lazy words so the vector paths can mask directly on full lanes.
// The complex multiply is the naive (ac-bd, ad+bc) form, matching what the
// scalar `v *= twiddle` computes on finite values with contraction disabled
// — outputs are bit-identical at every SIMD level.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fft/complex_fft.hpp"

namespace flash::sparsefft::detail {

using fft::cplx;

/// out[i] = i^(quadrant[i] & 3) * base[i] * (lazy[i] ? twiddle[i] : 1),
/// all arrays length m. Returns the number of lazy lanes settled (the
/// multiplication count the energy model charges). Dispatches on the
/// active SIMD level; every level produces bit-identical outputs.
std::uint64_t merged_materialize(const double* base_re, const double* base_im,
                                 const double* tw_re, const double* tw_im,
                                 const std::uint64_t* quadrant, const std::uint64_t* lazy,
                                 std::size_t m, cplx* out);

/// Scalar reference (also the tail loop of the vector paths).
std::uint64_t merged_materialize_scalar(const double* base_re, const double* base_im,
                                        const double* tw_re, const double* tw_im,
                                        const std::uint64_t* quadrant, const std::uint64_t* lazy,
                                        std::size_t m, cplx* out);

/// Vector kernels (separate TUs with -mavx2 / -mavx512*); process the
/// largest full-vector prefix and leave the tail to the scalar loop.
std::uint64_t merged_materialize_avx2(const double* base_re, const double* base_im,
                                      const double* tw_re, const double* tw_im,
                                      const std::uint64_t* quadrant, const std::uint64_t* lazy,
                                      std::size_t m, cplx* out);
std::uint64_t merged_materialize_avx512(const double* base_re, const double* base_im,
                                        const double* tw_re, const double* tw_im,
                                        const std::uint64_t* quadrant, const std::uint64_t* lazy,
                                        std::size_t m, cplx* out);

}  // namespace flash::sparsefft::detail
