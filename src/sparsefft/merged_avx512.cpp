// AVX-512 merged-materialize kernel: eight lazy values settled per pass.
// Same algorithm as the AVX2 kernel (see merged_avx2.cpp) with predicate
// masks instead of blend vectors; bit-identical to the scalar reference.
#include "sparsefft/merged_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <bit>

namespace flash::sparsefft::detail {

std::uint64_t merged_materialize_avx512(const double* base_re, const double* base_im,
                                        const double* tw_re, const double* tw_im,
                                        const std::uint64_t* quadrant, const std::uint64_t* lazy,
                                        std::size_t m, cplx* out) {
  const std::size_t vec = m & ~std::size_t{7};
  const __m512d sign = _mm512_set1_pd(-0.0);
  const __m512i three = _mm512_set1_epi64(3);
  const __m512i idx_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
  const __m512i idx_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
  std::uint64_t mults = 0;

  for (std::size_t i = 0; i < vec; i += 8) {
    const __m512d re = _mm512_loadu_pd(base_re + i);
    const __m512d im = _mm512_loadu_pd(base_im + i);
    const __m512d neg_re = _mm512_xor_pd(re, sign);
    const __m512d neg_im = _mm512_xor_pd(im, sign);

    const __m512i q = _mm512_and_si512(_mm512_loadu_si512(quadrant + i), three);
    const __mmask8 q1 = _mm512_cmpeq_epi64_mask(q, _mm512_set1_epi64(1));
    const __mmask8 q2 = _mm512_cmpeq_epi64_mask(q, _mm512_set1_epi64(2));
    const __mmask8 q3 = _mm512_cmpeq_epi64_mask(q, three);

    __m512d rot_re = re;
    rot_re = _mm512_mask_mov_pd(rot_re, q1, neg_im);
    rot_re = _mm512_mask_mov_pd(rot_re, q2, neg_re);
    rot_re = _mm512_mask_mov_pd(rot_re, q3, im);
    __m512d rot_im = im;
    rot_im = _mm512_mask_mov_pd(rot_im, q1, re);
    rot_im = _mm512_mask_mov_pd(rot_im, q2, neg_im);
    rot_im = _mm512_mask_mov_pd(rot_im, q3, neg_re);

    const __m512d twr = _mm512_loadu_pd(tw_re + i);
    const __m512d twi = _mm512_loadu_pd(tw_im + i);
    const __m512d pr = _mm512_sub_pd(_mm512_mul_pd(rot_re, twr), _mm512_mul_pd(rot_im, twi));
    const __m512d pi = _mm512_add_pd(_mm512_mul_pd(rot_re, twi), _mm512_mul_pd(rot_im, twr));

    const __mmask8 lz = _mm512_cmpneq_epi64_mask(_mm512_loadu_si512(lazy + i),
                                                 _mm512_setzero_si512());
    const __m512d out_re = _mm512_mask_mov_pd(rot_re, lz, pr);
    const __m512d out_im = _mm512_mask_mov_pd(rot_im, lz, pi);
    mults += static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(lz)));

    double* dst = reinterpret_cast<double*>(out + i);
    _mm512_storeu_pd(dst, _mm512_permutex2var_pd(out_re, idx_lo, out_im));
    _mm512_storeu_pd(dst + 8, _mm512_permutex2var_pd(out_re, idx_hi, out_im));
  }

  mults += merged_materialize_scalar(base_re + vec, base_im + vec, tw_re + vec, tw_im + vec,
                                     quadrant + vec, lazy + vec, m - vec, out + vec);
  return mults;
}

}  // namespace flash::sparsefft::detail

#else  // No AVX-512 in this compiler/arch: unreachable stub (dispatch never selects it).

#include <cstdlib>

namespace flash::sparsefft::detail {
std::uint64_t merged_materialize_avx512(const double*, const double*, const double*, const double*,
                                        const std::uint64_t*, const std::uint64_t*, std::size_t,
                                        cplx*) {
  std::abort();
}
}  // namespace flash::sparsefft::detail

#endif
