// Sparse butterfly dataflow planner (paper Section IV-B).
//
// Given the nonzero pattern of a weight polynomial, the planner walks the
// DIT butterfly network once and emits, per stage, only the operations whose
// inputs carry data. Zero-operand analysis subsumes both of the paper's
// optimizations:
//
//   * (u active, v zero)  -> outputs (u, u): a pure duplication. Runs of
//     these realize "skipping" — an N/2^x-point sub-network computed once
//     and copied (paper Fig. 8(a), Example 4.1).
//   * (u zero, v active)  -> outputs (W v, -W v): a multiply-only op. Chains
//     of these collapse multi-stage paths into cumulative-twiddle
//     multiplications — "merging" (paper Fig. 8(b), Example 4.2).
//   * both zero           -> no operation at all.
//
// Twiddles W = +1 (j = 0) and W = +/-i cost no real multiplications and are
// tracked separately, matching the paper's multiplication counts.
//
// One plan is built per layer-wide sparsity pattern and reused for every
// transform in that layer, so planning cost is amortized to noise (paper:
// "a single dataflow can be utilized across transforms in the same
// convolutional layer").
#pragma once

#include <cstdint>
#include <vector>

#include "sparsefft/pattern.hpp"

namespace flash::sparsefft {

enum class OpKind : std::uint8_t {
  kFull,      // both inputs active: multiply + add/sub
  kMulOnly,   // only bottom input active: multiply, negate for the mirror
  kCopy,      // only top input active: duplicate, no arithmetic
};

/// One scheduled butterfly. Indices address the in-place work array (which is
/// in bit-reversed order at stage 1 input).
struct ButterflyOp {
  std::uint32_t u = 0;           // top element index
  std::uint32_t v = 0;           // bottom element index (u + half)
  std::uint32_t twiddle_index = 0;  // j * (M >> stage): index into W_M^j table
  OpKind kind = OpKind::kFull;
};

/// Arithmetic cost of a plan in real (scalar) operations.
///
/// Two accountings are kept:
///  * per-stage — every scheduled kFull/kMulOnly op pays its multiplication
///    (what a naive zero-skipping executor would do);
///  * merged    — the paper's "merging": a value that traverses a chain of
///    single-source butterflies (kMulOnly/kCopy) stays *lazy*, accumulating
///    twiddle-factor exponents for free; a multiplication is paid only when
///    the value must materialize — at a two-input butterfly or at the
///    transform output. This is what collapses (N/2)log2(N) butterflies to
///    ~N multiplications for an isolated element (Example 4.2) and drives
///    the paper's >86% reduction at ResNet sparsity.
struct PlanCost {
  std::uint64_t complex_mults = 0;       // per-stage, non-trivial twiddles
  std::uint64_t trivial_mults = 0;       // W in {1, i}: free in hardware
  std::uint64_t complex_adds = 0;
  std::uint64_t copies = 0;
  std::uint64_t merged_mults = 0;        // merged accounting, non-trivial
  std::uint64_t merged_adds = 0;
  /// 4 real mults per complex mult (the BU datapath in the paper's Fig. 9
  /// instantiates four shift-add arrays).
  std::uint64_t real_mults() const { return 4 * complex_mults; }
  std::uint64_t real_adds() const { return 2 * complex_adds + 2 * complex_mults; }
};

/// A complete sparse execution schedule for an M-point FFT.
class SparseFftPlan {
 public:
  /// pattern: nonzeros of the *standard-order* input of the M-point FFT
  /// (i.e. the folded/twisted z sequence for a negacyclic transform).
  SparseFftPlan(std::size_t m, const SparsityPattern& pattern);

  std::size_t size() const { return m_; }
  int stages() const { return static_cast<int>(stage_ops_.size()); }
  const std::vector<ButterflyOp>& stage(int s) const { return stage_ops_[static_cast<std::size_t>(s)]; }
  const PlanCost& cost() const { return cost_; }

  /// Dense-FFT cost with the same trivial-twiddle accounting, for ratios.
  static PlanCost dense_cost(std::size_t m);

 private:
  std::size_t m_;
  std::vector<std::vector<ButterflyOp>> stage_ops_;  // stage_ops_[s-1] = ops of stage s
  PlanCost cost_;
};

/// True if W_M^t for twiddle table index t (t = j * M / 2^s) is one of
/// {1, -i} — the multiplication-free twiddles of the sign=+1 kernel table
/// (index 0 is 1; index M/4 is i for sign=+1).
bool is_trivial_twiddle(std::size_t twiddle_index, std::size_t m);

}  // namespace flash::sparsefft
