// Noise analysis helpers (paper §III-A, kernel-level robustness).
//
// The kernel-level error-resilience argument is: decryption succeeds as long
// as total noise (encryption noise + approximate-computation noise) stays
// below q/(2t). These helpers predict and measure the margin.
#pragma once

#include "bfv/encrypt.hpp"

namespace flash::bfv {

/// Predicted fresh-encryption noise bound (heuristic, high-probability):
/// |e| + |a*s| error terms ~ sigma * sqrt(N) scaled appropriately.
double predicted_fresh_noise_bits(const BfvParams& params);

/// Predicted noise growth of ct x pt where the plaintext has `weight_nnz`
/// nonzero coefficients of magnitude <= max_abs: multiplicative growth by the
/// l1 norm of the plaintext.
double predicted_plain_mult_noise_bits(const BfvParams& params, double input_noise_bits,
                                       std::size_t weight_nnz, double max_abs);

/// Headroom available for approximate-FFT error: how large an additive error
/// on ciphertext coefficients can be before decryption flips a message bit.
/// Returns the log2 of the tolerable per-coefficient error magnitude.
double approx_error_headroom_bits(const BfvParams& params, double current_noise_bits);

/// Static noise estimator: predicts the invariant-noise magnitude (in bits)
/// through a sequence of homomorphic operations, SEAL-style. Predictions are
/// high-probability upper estimates — tests check they bracket the measured
/// budgets. All values are log2 of the noise magnitude.
class NoiseEstimator {
 public:
  explicit NoiseEstimator(const BfvParams& params) : params_(params) {}

  /// Fresh public-key encryption: e1 + u*e + e2*s terms.
  double fresh() const;
  /// ct + ct (or ct +/- plain: rounding-only, no growth).
  double after_add(double a_bits, double b_bits) const;
  /// ct x pt with a plaintext of `nnz` nonzero coefficients of |.| <= max_abs.
  double after_multiply_plain(double noise_bits, std::size_t nnz, double max_abs) const;
  /// BFV ct x ct (tensor + rescale): growth ~ t * sqrt(2N) * (Na + Nb).
  double after_multiply_ct(double a_bits, double b_bits) const;
  /// Key switching with the given decomposition digit size.
  double after_key_switch(double noise_bits, int digit_bits) const;

  /// Remaining budget for a noise level (log2(q/2t) - noise).
  double budget(double noise_bits) const { return params_.noise_ceiling_bits() - noise_bits; }

 private:
  const BfvParams& params_;
};

}  // namespace flash::bfv
