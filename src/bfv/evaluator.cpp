#include "bfv/evaluator.hpp"

namespace flash::bfv {

void Evaluator::add_inplace(Ciphertext& ct, const Ciphertext& other) const {
  ct.c0.add_inplace(other.c0);
  ct.c1.add_inplace(other.c1);
}

void Evaluator::sub_inplace(Ciphertext& ct, const Ciphertext& other) const {
  ct.c0.sub_inplace(other.c0);
  ct.c1.sub_inplace(other.c1);
}

void Evaluator::negate_inplace(Ciphertext& ct) const {
  ct.c0.negate_inplace();
  ct.c1.negate_inplace();
}

Poly Evaluator::delta_scaled(const Plaintext& pt) const {
  const auto& p = ctx_.params();
  Poly out(p.q, p.n);
  const u64 delta = p.delta();
  for (std::size_t i = 0; i < p.n; ++i) {
    const u64 lifted = hemath::from_signed(hemath::to_signed(pt.poly[i], p.t), p.q);
    out[i] = hemath::mul_mod(lifted, delta, p.q);
  }
  return out;
}

void Evaluator::add_plain_inplace(Ciphertext& ct, const Plaintext& pt) const {
  ct.c0.add_inplace(delta_scaled(pt));
}

void Evaluator::sub_plain_inplace(Ciphertext& ct, const Plaintext& pt) const {
  ct.c0.sub_inplace(delta_scaled(pt));
}

Ciphertext Evaluator::multiply_plain(const Ciphertext& ct, const PlainSpectrum& w) const {
  return {engine_.multiply(ct.c0, w), engine_.multiply(ct.c1, w)};
}

Ciphertext Evaluator::multiply_plain(const Ciphertext& ct, const Plaintext& pt) const {
  return multiply_plain(ct, engine_.transform_plain(pt));
}

Evaluator::CiphertextSpectrum Evaluator::transform_ciphertext(const Ciphertext& ct) const {
  return {engine_.transform_cipher_spectrum(ct.c0), engine_.transform_cipher_spectrum(ct.c1)};
}

void Evaluator::multiply_accumulate(const CiphertextSpectrum& ct_spec, const PlainSpectrum& w,
                                    CiphertextAccumulator& accum) const {
  engine_.multiply_accumulate(ct_spec.c0, w, accum.c0);
  engine_.multiply_accumulate(ct_spec.c1, w, accum.c1);
}

Ciphertext Evaluator::finalize(const CiphertextAccumulator& accum) const {
  return {engine_.finalize(accum.c0), engine_.finalize(accum.c1)};
}

const WideMultiplier& Evaluator::wide() const {
  std::lock_guard<std::mutex> lock(wide_mu_);
  if (!wide_) wide_ = std::make_unique<WideMultiplier>(ctx_);
  // Safe to hand out unlocked: once built, the object is immutable and the
  // pointer is never reset for the lifetime of the Evaluator.
  return *wide_;
}

Ciphertext3 Evaluator::multiply(const Ciphertext& a, const Ciphertext& b) const {
  const WideMultiplier& w = wide();
  Ciphertext3 out;
  out.c0 = w.scaled_product(a.c0, b.c0);
  out.c1 = w.scaled_product_sum(a.c0, b.c1, a.c1, b.c0);
  out.c2 = w.scaled_product(a.c1, b.c1);
  return out;
}

Ciphertext Evaluator::relinearize(const Ciphertext3& ct, const RelinKeys& keys) const {
  Ciphertext out{ct.c0, ct.c1};
  apply_key_switch(ctx_, keys.key, ct.c2, out.c0, out.c1);
  return out;
}

Ciphertext Evaluator::multiply_relin(const Ciphertext& a, const Ciphertext& b,
                                     const RelinKeys& keys) const {
  return relinearize(multiply(a, b), keys);
}

Ciphertext Evaluator::apply_galois(const Ciphertext& ct, u64 galois_element,
                                   const GaloisKeys& keys) const {
  const auto it = keys.keys.find(galois_element);
  if (it == keys.keys.end()) throw std::invalid_argument("apply_galois: no key for element");
  const auto& p = ctx_.params();
  Ciphertext out{bfv::Poly(p.q, p.n), bfv::Poly(p.q, p.n)};
  out.c0 = bfv::apply_galois(ct.c0, galois_element);
  const Poly rotated_c1 = bfv::apply_galois(ct.c1, galois_element);
  apply_key_switch(ctx_, it->second, rotated_c1, out.c0, out.c1);
  return out;
}

Ciphertext Evaluator::rotate_rows(const Ciphertext& ct, int steps, const GaloisKeys& keys) const {
  return apply_galois(ct, galois_element_for_step(steps, ctx_.params().n), keys);
}

Ciphertext Evaluator::rotate_columns(const Ciphertext& ct, const GaloisKeys& keys) const {
  return apply_galois(ct, galois_element_row_swap(ctx_.params().n), keys);
}

}  // namespace flash::bfv
