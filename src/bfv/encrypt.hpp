// BFV key generation, encryption, decryption.
#pragma once

#include "bfv/context.hpp"

namespace flash::bfv {

class KeyGenerator {
 public:
  KeyGenerator(const BfvContext& ctx, hemath::Sampler& sampler) : ctx_(ctx), sampler_(sampler) {}

  SecretKey secret_key();
  PublicKey public_key(const SecretKey& sk);

 private:
  const BfvContext& ctx_;
  hemath::Sampler& sampler_;
};

class Encryptor {
 public:
  Encryptor(const BfvContext& ctx, hemath::Sampler& sampler) : ctx_(ctx), sampler_(sampler) {}

  /// Symmetric encryption: ct = (Delta*m + e - a*s, a), a uniform.
  Ciphertext encrypt_symmetric(const Plaintext& pt, const SecretKey& sk);

  /// Public-key encryption: ct = (p0*u + e1 + Delta*m, p1*u + e2), u ternary.
  Ciphertext encrypt(const Plaintext& pt, const PublicKey& pk);

 private:
  const BfvContext& ctx_;
  hemath::Sampler& sampler_;
};

struct Ciphertext3;  // bfv/evaluator.hpp

class Decryptor {
 public:
  Decryptor(const BfvContext& ctx, SecretKey sk) : ctx_(ctx), sk_(std::move(sk)) {}

  Plaintext decrypt(const Ciphertext& ct) const;

  /// Decrypt a pre-relinearization size-3 ciphertext (needs s^2).
  Plaintext decrypt(const Ciphertext3& ct) const;

  /// Bits of noise budget remaining, SEAL-style: log2(q/2t) minus the log of
  /// the largest noise coefficient. <= 0 means decryption is unreliable.
  double invariant_noise_budget(const Ciphertext& ct) const;

 private:
  /// c0 + c1*s mod q.
  Poly noisy_scaled_message(const Ciphertext& ct) const;

  const BfvContext& ctx_;
  SecretKey sk_;
};

}  // namespace flash::bfv
