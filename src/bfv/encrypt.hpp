// BFV key generation, encryption, decryption.
#pragma once

#include <span>

#include "bfv/context.hpp"

namespace flash::bfv {

class KeyGenerator {
 public:
  KeyGenerator(const BfvContext& ctx, hemath::Sampler& sampler) : ctx_(ctx), sampler_(sampler) {}

  SecretKey secret_key();
  PublicKey public_key(const SecretKey& sk);

 private:
  const BfvContext& ctx_;
  hemath::Sampler& sampler_;
};

/// Public key held in the NTT domain. Every public-key encryption computes
/// p0*u and p1*u; with the key spectra precomputed, an encryption costs one
/// forward transform (of u) plus one batched inverse pair instead of four
/// forwards and two inverses. Pure function of the key, so a long-lived
/// party (the HConv client, a serving process) builds it once.
struct PreparedPublicKey {
  std::vector<u64> p0_ntt;  // forward NTT of pk.p0
  std::vector<u64> p1_ntt;  // forward NTT of pk.p1
};

PreparedPublicKey prepare_public_key(const BfvContext& ctx, const PublicKey& pk);

class Encryptor {
 public:
  Encryptor(const BfvContext& ctx, hemath::Sampler& sampler) : ctx_(ctx), sampler_(sampler) {}

  /// Symmetric encryption: ct = (Delta*m + e - a*s, a), a uniform.
  Ciphertext encrypt_symmetric(const Plaintext& pt, const SecretKey& sk);

  /// Public-key encryption: ct = (p0*u + e1 + Delta*m, p1*u + e2), u ternary.
  Ciphertext encrypt(const Plaintext& pt, const PublicKey& pk);

  /// Same encryption against a prepared key: draws u, e1, e2 in the same
  /// sampler order, so for the same sampler state the ciphertext is
  /// bit-identical to encrypt(pt, pk) — only the transform work shrinks.
  Ciphertext encrypt(const Plaintext& pt, const PreparedPublicKey& pk);

 private:
  const BfvContext& ctx_;
  hemath::Sampler& sampler_;
};

struct Ciphertext3;  // bfv/evaluator.hpp

class Decryptor {
 public:
  /// Precomputes the secret key's NTT spectrum: every decrypt needs c1*s, so
  /// caching fwd(s) removes one of the two forward transforms per call.
  Decryptor(const BfvContext& ctx, SecretKey sk);

  Plaintext decrypt(const Ciphertext& ct) const;

  /// Decrypt a pre-relinearization size-3 ciphertext (needs s^2).
  Plaintext decrypt(const Ciphertext3& ct) const;

  /// Batched decryption: the c1 forward transforms and the product inverse
  /// transforms run through the batched SoA NTT (hemath/ntt), loading each
  /// twiddle once per batch. Bit-identical to a loop of decrypt() calls.
  std::vector<Plaintext> decrypt_batch(std::span<const Ciphertext> cts) const;

  /// Bits of noise budget remaining, SEAL-style: log2(q/2t) minus the log of
  /// the largest noise coefficient. <= 0 means decryption is unreliable.
  double invariant_noise_budget(const Ciphertext& ct) const;

 private:
  /// c0 + c1*s mod q.
  Poly noisy_scaled_message(const Ciphertext& ct) const;

  const BfvContext& ctx_;
  SecretKey sk_;
  std::vector<u64> s_ntt_;  // forward NTT of sk.s, shared by every decrypt
};

}  // namespace flash::bfv
