// SIMD batch encoding (SEAL's BatchEncoder).
//
// For a *prime* plaintext modulus t = 1 (mod 2N), the plaintext ring
// Z_t[X]/(X^N+1) splits into N independent slots via the CRT at the odd
// 2N-th roots of unity mod t. Encoding places values in slots; homomorphic
// add/multiply then acts slot-wise, and Galois automorphisms permute slots
// as two rotatable rows of N/2 (the classic layout: row rotation by the
// element 3^k, row swap by 2N-1).
//
// Not used by the Cheetah-style HConv path (which needs coefficient
// encoding), but part of the complete BFV substrate: GAZELLE-style linear
// protocols and the rotation baselines Cheetah avoids are built on it.
#pragma once

#include "bfv/context.hpp"

namespace flash::bfv {

class BatchEncoder {
 public:
  /// Requires params.t prime with t = 1 (mod 2N).
  explicit BatchEncoder(const BfvContext& ctx);

  std::size_t slots() const { return ctx_.params().n; }
  std::size_t row_size() const { return slots() / 2; }

  /// values.size() <= slots; missing slots are zero. Values are centered
  /// representatives mod t.
  Plaintext encode(const std::vector<i64>& values) const;
  std::vector<i64> decode(const Plaintext& pt) const;

  /// The slot permutation induced by the automorphism X -> X^g: output slot
  /// i holds input slot slot_after_galois(g)[i]. Used to verify rotations.
  std::vector<std::size_t> slot_permutation(u64 galois_element) const;

 private:
  const BfvContext& ctx_;
  hemath::NttTables t_ntt_;
  std::vector<std::size_t> slot_to_ntt_index_;  // slot layout -> NTT position
  std::vector<u64> ntt_index_to_exponent_;      // NTT position -> root exponent
};

}  // namespace flash::bfv
