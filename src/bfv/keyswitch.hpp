// Key switching: relinearization and Galois keys (BV-style digit
// decomposition).
//
// A key-switch key for a source secret s' encrypts T^i * s' under the target
// secret s for every digit position i. Switching a polynomial d (attached to
// s') decomposes d into base-T digits and inner-products them with the key,
// giving a ciphertext of the same message under s with only digit-scale
// noise growth. Relinearization switches s^2 -> s after ciphertext
// multiplication; Galois keys switch s(X^g) -> s after automorphisms.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bfv/context.hpp"

namespace flash::bfv {

/// One key-switch key: pairs (k0_i, k1_i) with k0_i = -(a_i s + e_i) + T^i s'.
struct KeySwitchKey {
  std::vector<Poly> k0;
  std::vector<Poly> k1;
  int digit_bits = 16;
  std::size_t digits() const { return k0.size(); }
};

struct RelinKeys {
  KeySwitchKey key;  // source secret: s^2
};

struct GaloisKeys {
  std::map<u64, KeySwitchKey> keys;  // galois element -> key for s(X^g)
  int digit_bits = 16;
};

class KeySwitcher {
 public:
  KeySwitcher(const BfvContext& ctx, hemath::Sampler& sampler, int digit_bits = 16);

  int digit_bits() const { return digit_bits_; }

  /// Generate a key switching from `source_secret` to sk.s.
  KeySwitchKey make_key(const Poly& source_secret, const SecretKey& sk) const;

  RelinKeys make_relin_keys(const SecretKey& sk) const;

  /// Galois keys for the given elements (odd, in [3, 2N-1]).
  GaloisKeys make_galois_keys(const SecretKey& sk, const std::vector<u64>& elements) const;

 private:
  const BfvContext& ctx_;
  hemath::Sampler& sampler_;
  int digit_bits_;
};

/// (c0, c1) += KeySwitch(d): fold a polynomial attached to the key's source
/// secret into a regular ciphertext. Needs no randomness, so it lives outside
/// the generator.
void apply_key_switch(const BfvContext& ctx, const KeySwitchKey& key, const Poly& d, Poly& c0,
                      Poly& c1);

/// The automorphism X -> X^g on a ring element (g odd). Used by batching
/// rotations; exposed for tests.
Poly apply_galois(const Poly& a, u64 galois_element);

/// Galois element realizing a rotation by `steps` of the batched row
/// (3^steps mod 2N), and the row-swap element (2N - 1).
u64 galois_element_for_step(int steps, std::size_t n);
u64 galois_element_row_swap(std::size_t n);

}  // namespace flash::bfv
