#include "bfv/context.hpp"

#include <stdexcept>

#include "fft/transform_cache.hpp"

namespace flash::bfv {

BfvContext::BfvContext(BfvParams params)
    : params_(params),
      ntt_(fft::shared_ntt_tables(params.q, params.n)),
      fft_(fft::shared_negacyclic_fft(params.n)) {
  params_.validate();
}

Plaintext BfvContext::encode_signed(const std::vector<i64>& values) const {
  if (values.size() > params_.n) throw std::invalid_argument("encode_signed: too many values");
  Plaintext pt = make_plaintext();
  const i64 half = static_cast<i64>(params_.t / 2);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > half || values[i] < -half) {
      throw std::out_of_range("encode_signed: value exceeds plaintext modulus range");
    }
    pt.poly[i] = hemath::from_signed(values[i], params_.t);
  }
  return pt;
}

std::vector<i64> BfvContext::decode_signed(const Plaintext& pt) const {
  std::vector<i64> out(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    out[i] = hemath::to_signed(pt.poly[i], params_.t);
  }
  return out;
}

}  // namespace flash::bfv
