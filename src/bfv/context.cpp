#include "bfv/context.hpp"

#include <stdexcept>

#include "fft/transform_cache.hpp"

namespace flash::bfv {

BfvContext::BfvContext(BfvParams params)
    : params_(params), fft_(fft::shared_negacyclic_fft(params.n)) {
  params_.validate();
  // NttTables require a prime q = 1 mod 2N; a power-of-two q (kPow2 backend)
  // has no NTT, so the tables stay null and ntt() throws if reached.
  if (!params_.q_is_pow2()) ntt_ = fft::shared_ntt_tables(params_.q, params_.n);
}

Plaintext BfvContext::encode_signed(const std::vector<i64>& values) const {
  if (values.size() > params_.n) throw std::invalid_argument("encode_signed: too many values");
  Plaintext pt = make_plaintext();
  const i64 half = static_cast<i64>(params_.t / 2);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > half || values[i] < -half) {
      throw std::out_of_range("encode_signed: value exceeds plaintext modulus range");
    }
    pt.poly[i] = hemath::from_signed(values[i], params_.t);
  }
  return pt;
}

std::vector<i64> BfvContext::decode_signed(const Plaintext& pt) const {
  std::vector<i64> out(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    out[i] = hemath::to_signed(pt.poly[i], params_.t);
  }
  return out;
}

}  // namespace flash::bfv
