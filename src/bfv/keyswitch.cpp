#include "bfv/keyswitch.hpp"

#include <cmath>
#include <stdexcept>

namespace flash::bfv {

KeySwitcher::KeySwitcher(const BfvContext& ctx, hemath::Sampler& sampler, int digit_bits)
    : ctx_(ctx), sampler_(sampler), digit_bits_(digit_bits) {
  if (digit_bits < 1 || digit_bits > 30) throw std::invalid_argument("KeySwitcher: digit_bits in [1,30]");
}

KeySwitchKey KeySwitcher::make_key(const Poly& source_secret, const SecretKey& sk) const {
  const auto& p = ctx_.params();
  const int q_bits = static_cast<int>(std::ceil(std::log2(static_cast<double>(p.q))));
  const std::size_t levels = static_cast<std::size_t>((q_bits + digit_bits_ - 1) / digit_bits_);

  KeySwitchKey key;
  key.digit_bits = digit_bits_;
  key.k0.reserve(levels);
  key.k1.reserve(levels);
  u64 power = 1;  // T^i mod q
  for (std::size_t i = 0; i < levels; ++i) {
    Poly a = sampler_.uniform_poly(p.q, p.n);
    Poly e = sampler_.gaussian_poly(p.q, p.n, p.error_sigma);
    Poly k0 = multiply(ctx_.ntt(), a, sk.s);
    k0.negate_inplace();
    k0.sub_inplace(e);
    Poly scaled = source_secret;
    scaled.scale_inplace(power);
    k0.add_inplace(scaled);
    key.k0.push_back(std::move(k0));
    key.k1.push_back(std::move(a));
    power = hemath::mul_mod(power, u64{1} << digit_bits_, p.q);
  }
  return key;
}

RelinKeys KeySwitcher::make_relin_keys(const SecretKey& sk) const {
  const Poly s_squared = multiply(ctx_.ntt(), sk.s, sk.s);
  return {make_key(s_squared, sk)};
}

GaloisKeys KeySwitcher::make_galois_keys(const SecretKey& sk, const std::vector<u64>& elements) const {
  GaloisKeys keys;
  keys.digit_bits = digit_bits_;
  for (u64 g : elements) {
    keys.keys.emplace(g, make_key(apply_galois(sk.s, g), sk));
  }
  return keys;
}

void apply_key_switch(const BfvContext& ctx, const KeySwitchKey& key, const Poly& d, Poly& c0,
                      Poly& c1) {
  const auto& p = ctx.params();
  const u64 mask = (u64{1} << key.digit_bits) - 1;
  Poly digit(p.q, p.n);
  Poly rest = d;
  for (std::size_t i = 0; i < key.digits(); ++i) {
    bool any = false;
    for (std::size_t j = 0; j < p.n; ++j) {
      // flash-lint: allow(raw-mod): digit decomposition slices base-2^w digits off an already-reduced residue, not a ring reduction
      digit[j] = rest[j] & mask;
      rest[j] >>= key.digit_bits;
      any = any || digit[j] != 0;
    }
    if (!any) continue;
    c0.add_inplace(multiply(ctx.ntt(), digit, key.k0[i]));
    c1.add_inplace(multiply(ctx.ntt(), digit, key.k1[i]));
  }
}

Poly apply_galois(const Poly& a, u64 galois_element) {
  const std::size_t n = a.degree();
  if ((galois_element & 1) == 0 || galois_element >= 2 * n) {
    throw std::invalid_argument("apply_galois: element must be odd and < 2N");
  }
  const u64 q = a.modulus();
  Poly out(q, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    const u64 j = (static_cast<u64>(i) * galois_element) % (2 * n);
    if (j < n) {
      out[j] = hemath::add_mod(out[j], a[i], q);
    } else {
      out[j - n] = hemath::sub_mod(out[j - n], a[i], q);  // X^N = -1
    }
  }
  return out;
}

u64 galois_element_for_step(int steps, std::size_t n) {
  const u64 m = 2 * static_cast<u64>(n);
  const std::size_t half = n / 2;
  // Row rotation by `steps`: 3^steps mod 2N (negative steps wrap).
  u64 e = 1;
  const std::size_t count = static_cast<std::size_t>(((steps % static_cast<int>(half)) +
                                                      static_cast<int>(half)) %
                                                     static_cast<int>(half));
  for (std::size_t i = 0; i < count; ++i) e = (e * 3) % m;
  return e;
}

u64 galois_element_row_swap(std::size_t n) { return 2 * static_cast<u64>(n) - 1; }

}  // namespace flash::bfv
