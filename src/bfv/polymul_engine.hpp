// Ciphertext x plaintext polynomial multiplication backends.
//
// This is the component FLASH accelerates. Four interchangeable backends:
//
//   kNtt        — exact modular arithmetic (what CPU libraries like SEAL and
//                 NTT accelerators like F1/CHAM compute); Fig. 4(a).
//   kFft        — double-precision N/2-point FFT with rounding back to Z_q;
//                 Fig. 4(b) with full-precision FP butterflies.
//   kApproxFft  — the FLASH datapath: the *plaintext* (weight) transform runs
//                 on approximate fixed-point BUs with quantized twiddles,
//                 while ciphertext transforms / pointwise ops stay in FP.
//   kPow2       — Jaguar-style Z_{2^k} ring (q = 2^k): modular reduction is
//                 a bit-mask instead of a Barrett/Montgomery mulhi chain.
//                 No NTT exists mod 2^k, so there is no spectral domain at
//                 all — "transforms" are signed lifts/copies and the product
//                 runs as exact Karatsuba over wrapping u64
//                 (hemath/pow2.hpp), proven bit-correct against schoolbook
//                 by the differential tier (ARCHITECTURE.md §14).
//
// Plaintext spectra are precomputed once (transform_plain) and reused across
// every ciphertext they multiply, mirroring how FLASH amortizes weight
// transforms across ciphertext tiles and both ciphertext components.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "bfv/context.hpp"
#include "fft/fxp_fft.hpp"
#include "hemath/pow2.hpp"

namespace flash::bfv {

enum class PolyMulBackend { kNtt, kFft, kApproxFft, kPow2 };

/// Spectral form of a plaintext polynomial under a specific backend.
struct PlainSpectrum {
  PolyMulBackend backend = PolyMulBackend::kNtt;
  std::vector<u64> ntt;        // kNtt: NTT of the signed lift to Z_q
  std::vector<fft::cplx> fft;  // kFft/kApproxFft: negacyclic half-spectrum
  std::vector<u64> pow2;       // kPow2: signed lift to Z_{2^k} (coefficient
                               // domain — no spectral domain exists mod 2^k)
};

/// Spectral form of one ciphertext polynomial (computed once per ciphertext
/// element and reused across every weight it multiplies — the activation
/// transform amortization of paper §III-B).
struct CipherSpectrum {
  PolyMulBackend backend = PolyMulBackend::kNtt;
  std::vector<u64> ntt;
  std::vector<fft::cplx> fft;
  std::vector<u64> pow2;
};

/// Spectral-domain accumulator: channel tiles and stride phases sum here
/// before the single inverse transform per output polynomial (Fig. 4(b)).
/// kPow2 accumulates coefficient-domain residues (each product is a full
/// negacyclic multiply; the "inverse transform" in finalize is a copy).
struct SpectralAccumulator {
  PolyMulBackend backend = PolyMulBackend::kNtt;
  std::vector<u64> ntt;
  std::vector<fft::cplx> fft;
  std::vector<u64> pow2;
  bool empty = true;
};

/// Operation counters for profiling (feeds the Fig. 1 breakdown and the
/// accelerator energy model). Plain value type: snapshots of the engine's
/// internal atomic tallies.
struct PolyMulCounters {
  std::uint64_t plain_transforms = 0;   // weight-side forward transforms
  std::uint64_t cipher_transforms = 0;  // ciphertext-side forward transforms
  std::uint64_t inverse_transforms = 0;
  std::uint64_t pointwise_products = 0;  // complex (or modular) point products
};

inline PolyMulCounters operator-(const PolyMulCounters& a, const PolyMulCounters& b) {
  return {a.plain_transforms - b.plain_transforms, a.cipher_transforms - b.cipher_transforms,
          a.inverse_transforms - b.inverse_transforms, a.pointwise_products - b.pointwise_products};
}

class PolyMulEngine {
 public:
  /// approx_config is required for kApproxFft and ignored otherwise.
  PolyMulEngine(const BfvContext& ctx, PolyMulBackend backend,
                std::optional<fft::FxpFftConfig> approx_config = std::nullopt);

  PolyMulBackend backend() const { return backend_; }
  /// Consistent snapshot of the cumulative tallies. Totals are exact even
  /// when many threads share one engine (relaxed atomics; no tally is lost).
  PolyMulCounters counters() const {
    return {counters_.plain_transforms.load(std::memory_order_relaxed),
            counters_.cipher_transforms.load(std::memory_order_relaxed),
            counters_.inverse_transforms.load(std::memory_order_relaxed),
            counters_.pointwise_products.load(std::memory_order_relaxed)};
  }
  void reset_counters() {
    counters_.plain_transforms.store(0, std::memory_order_relaxed);
    counters_.cipher_transforms.store(0, std::memory_order_relaxed);
    counters_.inverse_transforms.store(0, std::memory_order_relaxed);
    counters_.pointwise_products.store(0, std::memory_order_relaxed);
  }

  /// Transform a plaintext (weight) polynomial into the backend's spectral
  /// domain. Coefficients are lifted to signed representatives mod t.
  PlainSpectrum transform_plain(const Plaintext& pt) const;

  /// ct_poly (mod q) times the transformed plaintext, result mod q.
  Poly multiply(const Poly& ct_poly, const PlainSpectrum& w) const;

  /// Transform a ciphertext polynomial once; reused across output channels.
  CipherSpectrum transform_cipher_spectrum(const Poly& ct_poly) const;

  /// accum += ct_spec * w (point-wise, in the spectral domain).
  void multiply_accumulate(const CipherSpectrum& ct_spec, const PlainSpectrum& w,
                           SpectralAccumulator& accum) const;

  /// One inverse transform: spectral accumulation back to a ring element.
  Poly finalize(const SpectralAccumulator& accum) const;

  /// Lower-level FP helpers (kept public for tests and benches).
  std::vector<fft::cplx> transform_cipher(const Poly& ct_poly) const;
  std::vector<u64> transform_cipher_ntt(const Poly& ct_poly) const;
  std::vector<fft::cplx> pointwise(const std::vector<fft::cplx>& ct_spec,
                                   const PlainSpectrum& w) const;
  Poly inverse_to_poly(const std::vector<fft::cplx>& spec) const;

 private:
  /// Internal tallies are atomics so that transform methods — which are
  /// const and otherwise touch only immutable shared tables — stay safe to
  /// call from many threads at once (the seed code's plain mutable fields
  /// were a data race the moment two threads shared one engine).
  struct AtomicCounters {
    std::atomic<std::uint64_t> plain_transforms{0};
    std::atomic<std::uint64_t> cipher_transforms{0};
    std::atomic<std::uint64_t> inverse_transforms{0};
    std::atomic<std::uint64_t> pointwise_products{0};
  };

  const BfvContext& ctx_;
  PolyMulBackend backend_;
  std::shared_ptr<const fft::FxpNegacyclicTransform> approx_;  // process-wide cache
  std::optional<hemath::Pow2Ring> pow2_;                       // kPow2: k from params.q
  mutable AtomicCounters counters_;
};

}  // namespace flash::bfv
