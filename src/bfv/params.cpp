#include "bfv/params.hpp"

#include <cmath>
#include <stdexcept>

#include "hemath/primes.hpp"

namespace flash::bfv {

double BfvParams::noise_ceiling_bits() const {
  return std::log2(static_cast<double>(q)) - std::log2(2.0 * static_cast<double>(t));
}

void BfvParams::validate() const {
  if (n < 8 || (n & (n - 1)) != 0) throw std::invalid_argument("BfvParams: n must be a power of two >= 8");
  if (t < 2) throw std::invalid_argument("BfvParams: t must be >= 2");
  if (q <= t * 2) throw std::invalid_argument("BfvParams: q must exceed 2t");
  if (q_is_pow2()) {
    // Z_{2^k} ring: reduction is a mask, so the NTT-prime congruence and
    // primality requirements do not apply. add_mod/sub_mod still assume
    // q < 2^63, hence k <= 62.
    if (q > (u64{1} << 62)) throw std::invalid_argument("BfvParams: power-of-two q must be <= 2^62");
    return;
  }
  if ((q - 1) % (2 * n) != 0) throw std::invalid_argument("BfvParams: q must be 1 mod 2N (NTT prime)");
  if (!hemath::is_prime(q)) throw std::invalid_argument("BfvParams: q must be prime");
}

BfvParams BfvParams::create(std::size_t n, int log_t, int log_q) {
  BfvParams p;
  p.n = n;
  p.t = u64{1} << log_t;
  p.q = hemath::find_ntt_prime(log_q, n);
  p.validate();
  return p;
}

BfvParams BfvParams::create_pow2(std::size_t n, int log_t, int k) {
  if (k < 2 || k > 62) throw std::invalid_argument("BfvParams::create_pow2: k must be in [2, 62]");
  BfvParams p;
  p.n = n;
  p.t = u64{1} << log_t;
  p.q = u64{1} << k;
  p.validate();
  return p;
}

double estimated_security_bits(std::size_t n, double log_q) {
  // HE-standard reference points (ternary secret, classical): at 128-bit
  // security the ceiling on log2(q) doubles with N. Security scales roughly
  // linearly in N / log2(q) for fixed sigma, so interpolate on that ratio.
  // Reference: N/log2(q) ~ 1024/27 = 37.9 at 128 bits.
  if (log_q <= 0.0 || n == 0) return 0.0;
  const double ratio = static_cast<double>(n) / log_q;
  return 128.0 * ratio / (1024.0 / 27.0);
}

BfvParams BfvParams::create_batching(std::size_t n, int log_t, int log_q) {
  BfvParams p;
  p.n = n;
  p.t = hemath::find_ntt_prime(log_t, n);
  p.q = hemath::find_ntt_prime(log_q, n);
  if (p.q == p.t) p.q = hemath::next_prime_congruent(p.q + 1, 2 * n);
  p.validate();
  return p;
}

}  // namespace flash::bfv
