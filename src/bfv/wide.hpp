// Wide-modulus BFV over an RNS ciphertext modulus.
//
// Cheetah's production parameters use q ~ 2^109; accelerators hold such
// ciphertexts limb-wise (one NTT prime per limb) — exactly the layout the
// FLASH/F1/ARK cost models assume. This context implements the protocol's
// homomorphic subset (symmetric encryption, ⊞/⊟ plain, ⊠ plain, decryption)
// over hemath::RnsPoly, demonstrating the system end to end at
// beyond-64-bit moduli. The approximate-FFT observation carries over
// limb-wise: each limb's NTT is what FLASH's FFT path replaces.
#pragma once

#include <random>

#include "bfv/context.hpp"
#include "hemath/rns_poly.hpp"

namespace flash::bfv {

struct WideBfvParams {
  std::size_t n = 4096;
  u64 t = u64{1} << 20;           // plaintext / sharing modulus
  std::vector<u64> moduli;        // NTT primes; Q = prod
  double error_sigma = 3.2;

  hemath::u128 big_q() const;
  double noise_ceiling_bits() const;  // log2(Q / 2t)
  void validate() const;

  /// n, log2(t), and per-limb prime sizes (e.g. {45, 45} for Q ~ 2^90).
  static WideBfvParams create(std::size_t n, int log_t, const std::vector<int>& limb_bits);
};

struct WideCiphertext {
  hemath::RnsPoly c0;
  hemath::RnsPoly c1;
};

class WideBfv {
 public:
  WideBfv(WideBfvParams params, std::uint64_t seed);

  const WideBfvParams& params() const { return params_; }
  const hemath::RnsContext& rns() const { return rns_; }

  /// Symmetric encryption of signed values (centered mod t).
  WideCiphertext encrypt(const std::vector<i64>& values);

  std::vector<i64> decrypt(const WideCiphertext& ct) const;
  double invariant_noise_budget(const WideCiphertext& ct) const;

  /// ct ⊞ pt (Delta-scaled) and ct ⊠ pt (small signed weights).
  void add_plain_inplace(WideCiphertext& ct, const std::vector<i64>& values) const;
  void sub_plain_inplace(WideCiphertext& ct, const std::vector<i64>& values) const;
  WideCiphertext multiply_plain(const WideCiphertext& ct, const std::vector<i64>& weights) const;

  void add_inplace(WideCiphertext& a, const WideCiphertext& b) const;

 private:
  hemath::RnsPoly delta_scaled(const std::vector<i64>& values) const;
  hemath::RnsPoly noisy_scaled_message(const WideCiphertext& ct) const;

  WideBfvParams params_;
  hemath::RnsContext rns_;
  hemath::Sampler sampler_;
  std::vector<i64> secret_;       // ternary key (signed)
  hemath::RnsPoly secret_rns_;
};

}  // namespace flash::bfv
