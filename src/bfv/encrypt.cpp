#include "bfv/encrypt.hpp"

#include <cmath>

#include "bfv/evaluator.hpp"

namespace flash::bfv {

namespace {
/// Shared rounding of the noisy scaled message v: round(t/q * v) mod t.
Plaintext round_to_plaintext(const BfvContext& ctx, const Poly& v) {
  const auto& p = ctx.params();
  Plaintext pt = ctx.make_plaintext();
  const long double scale = static_cast<long double>(p.t) / static_cast<long double>(p.q);
  for (std::size_t i = 0; i < p.n; ++i) {
    const long double centered = static_cast<long double>(hemath::to_signed(v[i], p.q));
    const i64 rounded = static_cast<i64>(std::llroundl(centered * scale));
    pt.poly[i] = hemath::from_signed(rounded, p.t);
  }
  return pt;
}
}  // namespace

namespace {
/// Delta * m lifted into R_q.
Poly scaled_message(const BfvContext& ctx, const Plaintext& pt) {
  const auto& p = ctx.params();
  Poly out(p.q, p.n);
  const u64 delta = p.delta();
  for (std::size_t i = 0; i < p.n; ++i) {
    // Lift the (possibly signed) plaintext coefficient, then scale.
    const u64 lifted = hemath::from_signed(hemath::to_signed(pt.poly[i], p.t), p.q);
    out[i] = hemath::mul_mod(lifted, delta, p.q);
  }
  return out;
}
}  // namespace

SecretKey KeyGenerator::secret_key() {
  return {sampler_.ternary_poly(ctx_.params().q, ctx_.params().n)};
}

PublicKey KeyGenerator::public_key(const SecretKey& sk) {
  const auto& p = ctx_.params();
  Poly a = sampler_.uniform_poly(p.q, p.n);
  Poly e = sampler_.gaussian_poly(p.q, p.n, p.error_sigma);
  Poly p0 = multiply(ctx_.ntt(), a, sk.s);
  p0.negate_inplace();
  p0.sub_inplace(e);
  return {std::move(p0), std::move(a)};
}

Ciphertext Encryptor::encrypt_symmetric(const Plaintext& pt, const SecretKey& sk) {
  const auto& p = ctx_.params();
  Poly a = sampler_.uniform_poly(p.q, p.n);
  Poly e = sampler_.gaussian_poly(p.q, p.n, p.error_sigma);
  Poly c0 = scaled_message(ctx_, pt);
  c0.add_inplace(e);
  Poly as = multiply(ctx_.ntt(), a, sk.s);
  c0.sub_inplace(as);
  return {std::move(c0), std::move(a)};
}

Ciphertext Encryptor::encrypt(const Plaintext& pt, const PublicKey& pk) {
  const auto& p = ctx_.params();
  Poly u = sampler_.ternary_poly(p.q, p.n);
  Poly e1 = sampler_.gaussian_poly(p.q, p.n, p.error_sigma);
  Poly e2 = sampler_.gaussian_poly(p.q, p.n, p.error_sigma);
  Poly c0 = multiply(ctx_.ntt(), pk.p0, u);
  c0.add_inplace(e1);
  c0.add_inplace(scaled_message(ctx_, pt));
  Poly c1 = multiply(ctx_.ntt(), pk.p1, u);
  c1.add_inplace(e2);
  return {std::move(c0), std::move(c1)};
}

PreparedPublicKey prepare_public_key(const BfvContext& ctx, const PublicKey& pk) {
  PreparedPublicKey out;
  out.p0_ntt = pk.p0.coeffs();
  out.p1_ntt = pk.p1.coeffs();
  ctx.ntt().forward(out.p0_ntt);
  ctx.ntt().forward(out.p1_ntt);
  return out;
}

Ciphertext Encryptor::encrypt(const Plaintext& pt, const PreparedPublicKey& pk) {
  const auto& p = ctx_.params();
  // Identical draw order to the PublicKey overload (u, e1, e2).
  Poly u = sampler_.ternary_poly(p.q, p.n);
  Poly e1 = sampler_.gaussian_poly(p.q, p.n, p.error_sigma);
  Poly e2 = sampler_.gaussian_poly(p.q, p.n, p.error_sigma);
  // One forward of u shared by both key components; NTT residues are
  // canonical, so the products match multiply(ntt, pk.p_i, u) bit for bit.
  std::vector<u64> u_hat = u.coeffs();
  const auto& ntt = ctx_.ntt();
  ntt.forward(u_hat);
  std::vector<u64> c0v(p.n), c1v(p.n);
  ntt.pointwise(std::span<const u64>(pk.p0_ntt), std::span<const u64>(u_hat), std::span<u64>(c0v));
  ntt.pointwise(std::span<const u64>(pk.p1_ntt), std::span<const u64>(u_hat), std::span<u64>(c1v));
  u64* prods[] = {c0v.data(), c1v.data()};
  ntt.inverse_batch_into(prods);
  Poly c0(p.q, std::move(c0v));
  c0.add_inplace(e1);
  c0.add_inplace(scaled_message(ctx_, pt));
  Poly c1(p.q, std::move(c1v));
  c1.add_inplace(e2);
  return {std::move(c0), std::move(c1)};
}

Decryptor::Decryptor(const BfvContext& ctx, SecretKey sk) : ctx_(ctx), sk_(std::move(sk)) {
  s_ntt_ = sk_.s.coeffs();
  ctx_.ntt().forward(s_ntt_);
}

Poly Decryptor::noisy_scaled_message(const Ciphertext& ct) const {
  std::vector<u64> prod = ct.c1.coeffs();
  const auto& ntt = ctx_.ntt();
  ntt.forward(prod);
  ntt.pointwise(std::span<const u64>(prod), std::span<const u64>(s_ntt_), std::span<u64>(prod));
  ntt.inverse(prod);
  Poly v(ctx_.params().q, std::move(prod));
  v.add_inplace(ct.c0);
  return v;
}

Plaintext Decryptor::decrypt(const Ciphertext& ct) const {
  return round_to_plaintext(ctx_, noisy_scaled_message(ct));
}

std::vector<Plaintext> Decryptor::decrypt_batch(std::span<const Ciphertext> cts) const {
  const auto& p = ctx_.params();
  const auto& ntt = ctx_.ntt();
  const std::size_t count = cts.size();
  std::vector<std::vector<u64>> bufs(count);
  std::vector<u64*> ptrs(count);
  for (std::size_t i = 0; i < count; ++i) {
    bufs[i] = cts[i].c1.coeffs();
    ptrs[i] = bufs[i].data();
  }
  ntt.forward_batch_into(ptrs);
  for (std::size_t i = 0; i < count; ++i) {
    ntt.pointwise(std::span<const u64>(bufs[i]), std::span<const u64>(s_ntt_),
                  std::span<u64>(bufs[i]));
  }
  ntt.inverse_batch_into(ptrs);
  std::vector<Plaintext> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Poly v(p.q, std::move(bufs[i]));
    v.add_inplace(cts[i].c0);
    out.push_back(round_to_plaintext(ctx_, v));
  }
  return out;
}

Plaintext Decryptor::decrypt(const Ciphertext3& ct) const {
  // v = c0 + c1 s + c2 s^2.
  Poly v = multiply(ctx_.ntt(), ct.c1, sk_.s);
  const Poly s_squared = multiply(ctx_.ntt(), sk_.s, sk_.s);
  v.add_inplace(multiply(ctx_.ntt(), ct.c2, s_squared));
  v.add_inplace(ct.c0);
  return round_to_plaintext(ctx_, v);
}

double Decryptor::invariant_noise_budget(const Ciphertext& ct) const {
  const auto& p = ctx_.params();
  const Poly v = noisy_scaled_message(ct);
  const Plaintext m = decrypt(ct);
  const u64 delta = p.delta();
  u64 max_noise = 0;
  for (std::size_t i = 0; i < p.n; ++i) {
    const u64 lifted = hemath::from_signed(hemath::to_signed(m.poly[i], p.t), p.q);
    const u64 expect = hemath::mul_mod(lifted, delta, p.q);
    const u64 noise = hemath::sub_mod(v[i], expect, p.q);
    const i64 centered = hemath::to_signed(noise, p.q);
    const u64 mag = static_cast<u64>(centered < 0 ? -centered : centered);
    if (mag > max_noise) max_noise = mag;
  }
  const double ceiling = std::log2(static_cast<double>(p.q)) - std::log2(2.0 * static_cast<double>(p.t));
  const double level = std::log2(static_cast<double>(max_noise) + 1.0);
  return ceiling - level;
}

}  // namespace flash::bfv
