// BFV encryption parameters (paper Section II-A).
//
// The hybrid HE/2PC protocol only needs the "degree-0" subset of BFV:
// encryption, ct +/- ct, ct +/- pt, ct x pt, decryption. Parameters follow
// the paper's notation: polynomial degree N, plaintext modulus t (set by the
// maximum sum-product bit-width of the quantized conv layer), ciphertext
// modulus q (set by the noise budget and security level).
#pragma once

#include <cstdint>

#include "hemath/modular.hpp"

namespace flash::bfv {

using hemath::i64;
using hemath::u64;

struct BfvParams {
  std::size_t n = 4096;       // ring degree, power of two
  u64 t = u64{1} << 20;       // plaintext modulus (power of two is fine for BFV)
  u64 q = 0;                  // ciphertext modulus: NTT prime q = 1 mod 2N,
                              // or 2^k for the mask-reduce kPow2 backend
  double error_sigma = 3.2;   // RLWE error standard deviation

  u64 delta() const { return q / t; }
  /// log2 of the decryption noise ceiling q/(2t).
  double noise_ceiling_bits() const;

  /// True for a power-of-two ciphertext modulus (the Z_{2^k} ring of the
  /// kPow2 backend): reduction is a mask and no NTT exists mod q.
  bool q_is_pow2() const { return q != 0 && (q & (q - 1)) == 0; }

  void validate() const;

  /// Cheetah-like parameter set: N, log2(t), log2(q) with q an NTT prime and
  /// t a power of two (the 2PC sharing modulus).
  static BfvParams create(std::size_t n, int log_t, int log_q);

  /// Batching-capable parameter set: t is a *prime* = 1 mod 2N so the
  /// plaintext ring splits into N SIMD slots (GAZELLE-style protocols).
  static BfvParams create_batching(std::size_t n, int log_t, int log_q);

  /// Jaguar-style power-of-two set: q = 2^k, t = 2^log_t. k <= 62 keeps q
  /// inside the add_mod headroom (q < 2^63); the ct x pt path runs on the
  /// kPow2 mask-reduce backend (there is no NTT mod 2^k).
  static BfvParams create_pow2(std::size_t n, int log_t, int k);
};

/// Estimated classical security of an RLWE instance with ternary secret,
/// from the HE-standard tables (interpolated): the maximum total log2(q) at
/// 128-bit security is ~{27, 54, 109, 218, 438} for N = {1024..16384}.
/// Returns an approximate security level in bits for the given (n, log2 q).
double estimated_security_bits(std::size_t n, double log_q);

}  // namespace flash::bfv
