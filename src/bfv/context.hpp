// BFV context: parameters plus the precomputed transform machinery shared by
// all operations on one parameter set (NTT tables for exact arithmetic, the
// N/2-point FFT for the paper's approximate path).
#pragma once

#include <memory>
#include <stdexcept>

#include "bfv/params.hpp"
#include "fft/negacyclic.hpp"
#include "hemath/ntt.hpp"
#include "hemath/poly.hpp"
#include "hemath/sampler.hpp"

namespace flash::bfv {

using hemath::Poly;

/// A plaintext is an element of R_t.
struct Plaintext {
  Poly poly;  // modulus t
};

/// A (degree-1) ciphertext: dec(ct) = round(t/q * (c0 + c1*s)) mod t.
struct Ciphertext {
  Poly c0;  // modulus q
  Poly c1;  // modulus q
};

struct SecretKey {
  Poly s;  // ternary, stored mod q
};

struct PublicKey {
  Poly p0;  // -(a*s + e) mod q
  Poly p1;  // a
};

class BfvContext {
 public:
  explicit BfvContext(BfvParams params);

  const BfvParams& params() const { return params_; }
  /// NTT tables for prime q. A power-of-two q has no NTT (Z_{2^k} lacks the
  /// roots of unity); those contexts serve the kPow2 engine path only, and
  /// reaching for the tables is a programming error.
  const hemath::NttTables& ntt() const {
    if (!ntt_) throw std::logic_error("BfvContext::ntt: no NTT tables exist for power-of-two q");
    return *ntt_;
  }
  const fft::NegacyclicFft& fft() const { return *fft_; }

  Plaintext make_plaintext() const { return {Poly(params_.t, params_.n)}; }
  Ciphertext make_ciphertext() const { return {Poly(params_.q, params_.n), Poly(params_.q, params_.n)}; }

  /// Encode a vector of signed cleartext values into plaintext coefficients
  /// (centered lift mod t). Values must fit in (-t/2, t/2].
  Plaintext encode_signed(const std::vector<i64>& values) const;

  /// Decode back to signed values.
  std::vector<i64> decode_signed(const Plaintext& pt) const;

 private:
  BfvParams params_;
  // Shared process-wide (fft::transform_cache): contexts on the same (q, N)
  // reuse one set of immutable tables instead of recomputing them.
  std::shared_ptr<const hemath::NttTables> ntt_;
  std::shared_ptr<const fft::NegacyclicFft> fft_;
};

}  // namespace flash::bfv
