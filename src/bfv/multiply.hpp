// Ciphertext x ciphertext multiplication support: exact wide polynomial
// products via a CRT (RNS) basis.
//
// BFV homomorphic multiplication needs the *integer* (unreduced) negacyclic
// product of centered ciphertext polynomials, scaled by t/q and re-reduced.
// Coefficients of that product reach N*(q/2)^2, far beyond 64 bits, so we
// evaluate it in an RNS basis {q, p1, p2, ...} of NTT primes sized so the
// composed modulus covers the worst case, CRT-compose to the centered
// 128-bit integer, and round t*x/q. This mirrors how RNS libraries (SEAL)
// implement BFV multiplication, scaled down to a single-word q.
#pragma once

#include <vector>

#include "bfv/context.hpp"
#include "hemath/rns.hpp"

namespace flash::bfv {

/// Exact signed negacyclic products of ring elements whose inputs are
/// centered representatives mod q; results are returned scaled by t/q and
/// reduced mod q (the BFV multiplication primitive).
class WideMultiplier {
 public:
  explicit WideMultiplier(const BfvContext& ctx);

  /// round(t/q * (a (*) b)) mod q, where (*) is the negacyclic product of
  /// the centered representatives of a and b.
  Poly scaled_product(const Poly& a, const Poly& b) const;

  /// round(t/q * (a (*) b + c (*) d)) mod q — the d1 component of the BFV
  /// tensor product, kept as one rounding to avoid double rounding error.
  Poly scaled_product_sum(const Poly& a, const Poly& b, const Poly& c, const Poly& d) const;

  const hemath::RnsBasis& basis() const { return basis_; }

 private:
  /// Per-limb negacyclic product accumulation; `acc` holds limb residues.
  void accumulate_product(const Poly& a, const Poly& b,
                          std::vector<std::vector<u64>>& acc) const;
  Poly compose_and_scale(const std::vector<std::vector<u64>>& acc) const;

  const BfvContext& ctx_;
  std::vector<u64> aux_primes_;
  hemath::RnsBasis basis_;                    // {q, p1, p2, ...}
  std::vector<hemath::NttTables> limb_ntt_;   // tables per basis prime
};

}  // namespace flash::bfv
