#include "bfv/serialization.hpp"

#include <stdexcept>

namespace flash::bfv {

namespace {
constexpr u64 kMagic = 0x464C415348424656ULL;  // "FLASHBFV"
constexpr std::uint8_t kTagParams = 1;
constexpr std::uint8_t kTagPlaintext = 2;
constexpr std::uint8_t kTagCiphertext = 3;
constexpr std::uint8_t kTagSecretKey = 4;
constexpr std::uint8_t kTagPublicKey = 5;
constexpr std::uint8_t kTagKeySwitchKey = 6;

void write_header(ByteWriter& w, std::uint8_t tag, const BfvParams& p) {
  w.write_u64(kMagic);
  w.write_u8(tag);
  w.write_u64(p.n);
  w.write_u64(p.t);
  w.write_u64(p.q);
}

void check_header(ByteReader& r, std::uint8_t tag, const BfvParams& p) {
  if (r.read_u64() != kMagic) throw std::runtime_error("deserialize: bad magic");
  if (r.read_u8() != tag) throw std::runtime_error("deserialize: wrong object type");
  if (r.read_u64() != p.n || r.read_u64() != p.t || r.read_u64() != p.q) {
    throw std::runtime_error("deserialize: parameter mismatch");
  }
}

// Top-level loaders own the whole buffer; leftover bytes mean a framing bug
// (or a concatenated/corrupted stream), not a valid object.
void check_exhausted(const ByteReader& r) {
  if (!r.exhausted()) throw std::runtime_error("deserialize: trailing bytes after object");
}
}  // namespace

void ByteWriter::write_u64(u64 v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

u64 ByteReader::read_u64() {
  if (pos_ + 8 > bytes_.size()) throw std::runtime_error("ByteReader: underflow");
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(bytes_[pos_++]) << (8 * i);
  return v;
}

std::uint8_t ByteReader::read_u8() {
  if (pos_ >= bytes_.size()) throw std::runtime_error("ByteReader: underflow");
  return bytes_[pos_++];
}

Bytes serialize(const BfvParams& params) {
  ByteWriter w;
  w.write_u64(kMagic);
  w.write_u8(kTagParams);
  w.write_u64(params.n);
  w.write_u64(params.t);
  w.write_u64(params.q);
  w.write_u64(static_cast<u64>(params.error_sigma * 1000.0));
  return w.take();
}

BfvParams deserialize_params(ByteReader& reader) {
  if (reader.read_u64() != kMagic) throw std::runtime_error("deserialize_params: bad magic");
  if (reader.read_u8() != kTagParams) throw std::runtime_error("deserialize_params: wrong type");
  BfvParams p;
  p.n = reader.read_u64();
  p.t = reader.read_u64();
  p.q = reader.read_u64();
  p.error_sigma = static_cast<double>(reader.read_u64()) / 1000.0;
  p.validate();
  return p;
}

void serialize(const Poly& poly, ByteWriter& writer) {
  writer.write_u64(poly.modulus());
  writer.write_u64(poly.degree());
  for (std::size_t i = 0; i < poly.degree(); ++i) writer.write_u64(poly[i]);
}

Poly deserialize_poly(ByteReader& reader) {
  const u64 modulus = reader.read_u64();
  const u64 degree = reader.read_u64();
  if (degree > (u64{1} << 20)) throw std::runtime_error("deserialize_poly: degree too large");
  Poly p(modulus, static_cast<std::size_t>(degree));
  for (std::size_t i = 0; i < degree; ++i) {
    const u64 c = reader.read_u64();
    if (c >= modulus) throw std::runtime_error("deserialize_poly: coefficient out of range");
    p[i] = c;
  }
  return p;
}

Bytes serialize(const BfvParams& params, const Plaintext& pt) {
  ByteWriter w;
  write_header(w, kTagPlaintext, params);
  serialize(pt.poly, w);
  return w.take();
}

Plaintext deserialize_plaintext(const BfvContext& ctx, const Bytes& bytes) {
  ByteReader r(bytes);
  check_header(r, kTagPlaintext, ctx.params());
  Plaintext pt{deserialize_poly(r)};
  if (pt.poly.modulus() != ctx.params().t) throw std::runtime_error("plaintext: wrong modulus");
  check_exhausted(r);
  return pt;
}

Bytes serialize(const BfvParams& params, const Ciphertext& ct) {
  ByteWriter w;
  write_header(w, kTagCiphertext, params);
  serialize(ct.c0, w);
  serialize(ct.c1, w);
  return w.take();
}

Ciphertext deserialize_ciphertext(const BfvContext& ctx, const Bytes& bytes) {
  ByteReader r(bytes);
  check_header(r, kTagCiphertext, ctx.params());
  Ciphertext ct{deserialize_poly(r), deserialize_poly(r)};
  if (ct.c0.modulus() != ctx.params().q || ct.c1.modulus() != ctx.params().q) {
    throw std::runtime_error("ciphertext: wrong modulus");
  }
  check_exhausted(r);
  return ct;
}

Bytes serialize(const BfvParams& params, const SecretKey& sk) {
  ByteWriter w;
  write_header(w, kTagSecretKey, params);
  serialize(sk.s, w);
  return w.take();
}

SecretKey deserialize_secret_key(const BfvContext& ctx, const Bytes& bytes) {
  ByteReader r(bytes);
  check_header(r, kTagSecretKey, ctx.params());
  SecretKey sk{deserialize_poly(r)};
  check_exhausted(r);
  return sk;
}

Bytes serialize(const BfvParams& params, const PublicKey& pk) {
  ByteWriter w;
  write_header(w, kTagPublicKey, params);
  serialize(pk.p0, w);
  serialize(pk.p1, w);
  return w.take();
}

PublicKey deserialize_public_key(const BfvContext& ctx, const Bytes& bytes) {
  ByteReader r(bytes);
  check_header(r, kTagPublicKey, ctx.params());
  PublicKey pk{deserialize_poly(r), deserialize_poly(r)};
  check_exhausted(r);
  return pk;
}

Bytes serialize(const BfvParams& params, const KeySwitchKey& key) {
  ByteWriter w;
  write_header(w, kTagKeySwitchKey, params);
  w.write_u64(static_cast<u64>(key.digit_bits));
  w.write_u64(key.digits());
  for (std::size_t i = 0; i < key.digits(); ++i) {
    serialize(key.k0[i], w);
    serialize(key.k1[i], w);
  }
  return w.take();
}

KeySwitchKey deserialize_key_switch_key(const BfvContext& ctx, const Bytes& bytes) {
  ByteReader r(bytes);
  check_header(r, kTagKeySwitchKey, ctx.params());
  KeySwitchKey key;
  key.digit_bits = static_cast<int>(r.read_u64());
  const u64 digits = r.read_u64();
  if (digits > 64) throw std::runtime_error("key switch key: too many digits");
  for (u64 i = 0; i < digits; ++i) {
    key.k0.push_back(deserialize_poly(r));
    key.k1.push_back(deserialize_poly(r));
  }
  check_exhausted(r);
  return key;
}

}  // namespace flash::bfv
