#include "bfv/serialization.hpp"

#include <stdexcept>

namespace flash::bfv {

namespace {
constexpr u64 kMagic = 0x464C415348424656ULL;  // "FLASHBFV"
constexpr std::uint8_t kTagParams = 1;
constexpr std::uint8_t kTagPlaintext = 2;
constexpr std::uint8_t kTagCiphertext = 3;
constexpr std::uint8_t kTagSecretKey = 4;
constexpr std::uint8_t kTagPublicKey = 5;
constexpr std::uint8_t kTagKeySwitchKey = 6;

void write_header(ByteWriter& w, std::uint8_t tag, const BfvParams& p) {
  w.write_u64(kMagic);
  w.write_u8(tag);
  w.write_u64(p.n);
  w.write_u64(p.t);
  w.write_u64(p.q);
}

void check_header(ByteReader& r, std::uint8_t tag, const BfvParams& p) {
  if (r.read_u64() != kMagic) throw SerializationError("deserialize: bad magic");
  if (r.read_u8() != tag) throw SerializationError("deserialize: wrong object type");
  if (r.read_u64() != p.n || r.read_u64() != p.t || r.read_u64() != p.q) {
    throw SerializationError("deserialize: parameter mismatch");
  }
}

// Top-level loaders own the whole buffer; leftover bytes mean a framing bug
// (or a concatenated/corrupted stream), not a valid object.
void check_exhausted(const ByteReader& r) {
  if (!r.exhausted()) throw SerializationError("deserialize: trailing bytes after object");
}
}  // namespace

void ByteWriter::write_u64(u64 v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

u64 ByteReader::read_u64() {
  if (pos_ + 8 > bytes_.size()) throw SerializationError("ByteReader: underflow");
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(bytes_[pos_++]) << (8 * i);
  return v;
}

std::uint8_t ByteReader::read_u8() {
  if (pos_ >= bytes_.size()) throw SerializationError("ByteReader: underflow");
  return bytes_[pos_++];
}

Bytes serialize(const BfvParams& params) {
  ByteWriter w;
  w.write_u64(kMagic);
  w.write_u8(kTagParams);
  w.write_u64(params.n);
  w.write_u64(params.t);
  w.write_u64(params.q);
  w.write_u64(static_cast<u64>(params.error_sigma * 1000.0));
  return w.take();
}

BfvParams deserialize_params(ByteReader& reader) {
  if (reader.read_u64() != kMagic) throw SerializationError("deserialize_params: bad magic");
  if (reader.read_u8() != kTagParams) throw SerializationError("deserialize_params: wrong type");
  BfvParams p;
  const u64 n = reader.read_u64();
  // Range-check header fields BEFORE validate(): its own arithmetic assumes
  // sane magnitudes (2*n and 2*t must not wrap — an adversarial n = 2^63
  // would turn its modulus check into a division by zero).
  if (n < 8 || n > kMaxPolyDegree) throw SerializationError("deserialize_params: n out of range");
  p.n = static_cast<std::size_t>(n);
  p.t = reader.read_u64();
  p.q = reader.read_u64();
  if (p.t == 0 || p.t > (u64{1} << 62) || p.q == 0) {
    throw SerializationError("deserialize_params: modulus out of range");
  }
  p.error_sigma = static_cast<double>(reader.read_u64()) / 1000.0;
  try {
    p.validate();
  } catch (const std::exception& e) {
    throw SerializationError(std::string("deserialize_params: ") + e.what());
  }
  return p;
}

void serialize(const Poly& poly, ByteWriter& writer) {
  writer.write_u64(poly.modulus());
  writer.write_u64(poly.degree());
  for (std::size_t i = 0; i < poly.degree(); ++i) writer.write_u64(poly[i]);
}

Poly deserialize_poly(ByteReader& reader) {
  const u64 modulus = reader.read_u64();
  const u64 degree = reader.read_u64();
  if (modulus == 0) throw SerializationError("deserialize_poly: zero modulus");
  if (degree > kMaxPolyDegree) throw SerializationError("deserialize_poly: degree too large");
  // Allocation cap: the buffer must actually hold `degree` coefficients
  // before a Poly of that size is constructed. Without this, a forged degree
  // just under the hard cap makes every call allocate (and zero) 8 MiB only
  // to throw on the first missing coefficient.
  if (degree * 8 > reader.remaining()) {
    throw SerializationError("deserialize_poly: degree exceeds buffer");
  }
  Poly p(modulus, static_cast<std::size_t>(degree));
  for (std::size_t i = 0; i < degree; ++i) {
    const u64 c = reader.read_u64();
    if (c >= modulus) throw SerializationError("deserialize_poly: coefficient out of range");
    p[i] = c;
  }
  return p;
}

Bytes serialize(const BfvParams& params, const Plaintext& pt) {
  ByteWriter w;
  write_header(w, kTagPlaintext, params);
  serialize(pt.poly, w);
  return w.take();
}

Plaintext deserialize_plaintext(const BfvContext& ctx, const Bytes& bytes) {
  ByteReader r(bytes);
  check_header(r, kTagPlaintext, ctx.params());
  Plaintext pt{deserialize_poly(r)};
  if (pt.poly.modulus() != ctx.params().t) throw SerializationError("plaintext: wrong modulus");
  check_exhausted(r);
  return pt;
}

Bytes serialize(const BfvParams& params, const Ciphertext& ct) {
  ByteWriter w;
  write_header(w, kTagCiphertext, params);
  serialize(ct.c0, w);
  serialize(ct.c1, w);
  return w.take();
}

Ciphertext deserialize_ciphertext(const BfvContext& ctx, const Bytes& bytes) {
  ByteReader r(bytes);
  check_header(r, kTagCiphertext, ctx.params());
  Ciphertext ct{deserialize_poly(r), deserialize_poly(r)};
  if (ct.c0.modulus() != ctx.params().q || ct.c1.modulus() != ctx.params().q) {
    throw SerializationError("ciphertext: wrong modulus");
  }
  check_exhausted(r);
  return ct;
}

Bytes serialize(const BfvParams& params, const SecretKey& sk) {
  ByteWriter w;
  write_header(w, kTagSecretKey, params);
  serialize(sk.s, w);
  return w.take();
}

SecretKey deserialize_secret_key(const BfvContext& ctx, const Bytes& bytes) {
  ByteReader r(bytes);
  check_header(r, kTagSecretKey, ctx.params());
  SecretKey sk{deserialize_poly(r)};
  check_exhausted(r);
  return sk;
}

Bytes serialize(const BfvParams& params, const PublicKey& pk) {
  ByteWriter w;
  write_header(w, kTagPublicKey, params);
  serialize(pk.p0, w);
  serialize(pk.p1, w);
  return w.take();
}

PublicKey deserialize_public_key(const BfvContext& ctx, const Bytes& bytes) {
  ByteReader r(bytes);
  check_header(r, kTagPublicKey, ctx.params());
  PublicKey pk{deserialize_poly(r), deserialize_poly(r)};
  check_exhausted(r);
  return pk;
}

Bytes serialize(const BfvParams& params, const KeySwitchKey& key) {
  ByteWriter w;
  write_header(w, kTagKeySwitchKey, params);
  w.write_u64(static_cast<u64>(key.digit_bits));
  w.write_u64(key.digits());
  for (std::size_t i = 0; i < key.digits(); ++i) {
    serialize(key.k0[i], w);
    serialize(key.k1[i], w);
  }
  return w.take();
}

KeySwitchKey deserialize_key_switch_key(const BfvContext& ctx, const Bytes& bytes) {
  ByteReader r(bytes);
  check_header(r, kTagKeySwitchKey, ctx.params());
  KeySwitchKey key;
  const u64 digit_bits = r.read_u64();
  // digit_bits parameterizes 1 << digit_bits shifts downstream; accepting a
  // header value >= 64 (or 0) silently misparses into shift UB later.
  if (digit_bits == 0 || digit_bits > 63) {
    throw SerializationError("key switch key: digit_bits out of range");
  }
  key.digit_bits = static_cast<int>(digit_bits);
  const u64 digits = r.read_u64();
  if (digits > 64) throw SerializationError("key switch key: too many digits");
  for (u64 i = 0; i < digits; ++i) {
    key.k0.push_back(deserialize_poly(r));
    key.k1.push_back(deserialize_poly(r));
  }
  check_exhausted(r);
  return key;
}

}  // namespace flash::bfv
