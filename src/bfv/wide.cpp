#include "bfv/wide.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hemath/primes.hpp"

namespace flash::bfv {

using hemath::RnsPoly;
using hemath::u128;

hemath::u128 WideBfvParams::big_q() const {
  u128 q = 1;
  for (u64 m : moduli) q *= m;
  return q;
}

double WideBfvParams::noise_ceiling_bits() const {
  double bits = 0;
  for (u64 m : moduli) bits += std::log2(static_cast<double>(m));
  return bits - std::log2(2.0 * static_cast<double>(t));
}

void WideBfvParams::validate() const {
  if (n < 8 || (n & (n - 1)) != 0) throw std::invalid_argument("WideBfvParams: bad n");
  if (moduli.size() < 2) throw std::invalid_argument("WideBfvParams: need >= 2 limbs (use BfvParams otherwise)");
  for (u64 m : moduli) {
    if (!hemath::is_prime(m) || (m - 1) % (2 * n) != 0) {
      throw std::invalid_argument("WideBfvParams: every limb must be an NTT prime");
    }
  }
  if (noise_ceiling_bits() < 10.0) throw std::invalid_argument("WideBfvParams: q too small for t");
}

WideBfvParams WideBfvParams::create(std::size_t n, int log_t, const std::vector<int>& limb_bits) {
  WideBfvParams p;
  p.n = n;
  p.t = u64{1} << log_t;
  for (int bits : limb_bits) {
    u64 candidate = hemath::find_ntt_prime(bits, n);
    while (std::find(p.moduli.begin(), p.moduli.end(), candidate) != p.moduli.end()) {
      candidate = hemath::next_prime_congruent(candidate + 1, 2 * n);
    }
    p.moduli.push_back(candidate);
  }
  p.validate();
  return p;
}

WideBfv::WideBfv(WideBfvParams params, std::uint64_t seed)
    : params_(std::move(params)), rns_(params_.moduli, params_.n), sampler_(seed),
      secret_([&] {
        std::vector<i64> s(params_.n);
        std::uniform_int_distribution<int> dist(-1, 1);
        for (auto& v : s) v = dist(sampler_.rng());
        return s;
      }()),
      secret_rns_(RnsPoly::from_signed(rns_, secret_)) {
  params_.validate();
}

RnsPoly WideBfv::delta_scaled(const std::vector<i64>& values) const {
  if (values.size() != params_.n) throw std::invalid_argument("WideBfv: value count mismatch");
  const u128 delta = params_.big_q() / params_.t;
  RnsPoly out(rns_);
  for (std::size_t l = 0; l < rns_.limbs(); ++l) {
    const u64 q = rns_.basis().moduli()[l];
    // flash-lint: allow(raw-mod): delta is u128 (the hemath helpers are u64-only)
    const u64 delta_mod = static_cast<u64>(delta % q);
    auto& limb = out.mutable_limb(l);
    for (std::size_t i = 0; i < params_.n; ++i) {
      limb[i] = hemath::mul_mod(hemath::from_signed(values[i], q), delta_mod, q);
    }
  }
  return out;
}

WideCiphertext WideBfv::encrypt(const std::vector<i64>& values) {
  // Symmetric RLWE: c1 = a uniform per limb (consistent across limbs via a
  // single signed draw is unnecessary — a is uniform mod Q, drawn limb-wise
  // from one uniform big value per coefficient).
  RnsPoly a(rns_);
  for (std::size_t i = 0; i < params_.n; ++i) {
    // Draw each limb residue independently: CRT of independent uniforms is
    // uniform mod Q.
    for (std::size_t l = 0; l < rns_.limbs(); ++l) {
      a.mutable_limb(l)[i] = sampler_.uniform_mod(rns_.basis().moduli()[l]);
    }
  }
  std::vector<i64> e(params_.n);
  std::normal_distribution<double> gauss(0.0, params_.error_sigma);
  for (auto& v : e) v = static_cast<i64>(std::llround(gauss(sampler_.rng())));

  RnsPoly c0 = delta_scaled(values);
  c0.add_inplace(RnsPoly::from_signed(rns_, e));
  RnsPoly as = hemath::multiply(a, secret_rns_);
  c0.sub_inplace(as);
  return {std::move(c0), std::move(a)};
}

RnsPoly WideBfv::noisy_scaled_message(const WideCiphertext& ct) const {
  RnsPoly v = hemath::multiply(ct.c1, secret_rns_);
  v.add_inplace(ct.c0);
  return v;
}

std::vector<i64> WideBfv::decrypt(const WideCiphertext& ct) const {
  const RnsPoly v = noisy_scaled_message(ct);
  const u128 big_q = params_.big_q();
  std::vector<i64> out(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    const auto [neg, mag] = v.coeff_centered(i);
    // round(t * x / Q) on the centered representative; long double carries
    // 64 mantissa bits, ample since the quotient is < t.
    const long double scaled = static_cast<long double>(mag) * static_cast<long double>(params_.t) /
                               static_cast<long double>(big_q);
    i64 m = static_cast<i64>(std::llroundl(scaled));
    if (neg) m = -m;
    out[i] = hemath::to_signed(hemath::from_signed(m, params_.t), params_.t);
  }
  return out;
}

double WideBfv::invariant_noise_budget(const WideCiphertext& ct) const {
  const RnsPoly v = noisy_scaled_message(ct);
  const std::vector<i64> m = decrypt(ct);
  const RnsPoly expect = delta_scaled(m);
  RnsPoly noise = v;
  noise.sub_inplace(expect);
  long double max_bits = 0.0;
  for (std::size_t i = 0; i < params_.n; ++i) {
    const auto [neg, mag] = noise.coeff_centered(i);
    (void)neg;
    const long double bits = mag > 0 ? std::log2l(static_cast<long double>(mag)) : 0.0;
    max_bits = std::max(max_bits, bits);
  }
  return params_.noise_ceiling_bits() - static_cast<double>(max_bits);
}

void WideBfv::add_plain_inplace(WideCiphertext& ct, const std::vector<i64>& values) const {
  ct.c0.add_inplace(delta_scaled(values));
}

void WideBfv::sub_plain_inplace(WideCiphertext& ct, const std::vector<i64>& values) const {
  ct.c0.sub_inplace(delta_scaled(values));
}

WideCiphertext WideBfv::multiply_plain(const WideCiphertext& ct,
                                       const std::vector<i64>& weights) const {
  const RnsPoly w = RnsPoly::from_signed(rns_, weights);
  return {hemath::multiply(ct.c0, w), hemath::multiply(ct.c1, w)};
}

void WideBfv::add_inplace(WideCiphertext& a, const WideCiphertext& b) const {
  a.c0.add_inplace(b.c0);
  a.c1.add_inplace(b.c1);
}

}  // namespace flash::bfv
