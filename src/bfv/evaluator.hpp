// Homomorphic evaluation: the ⊞ / ⊟ / ⊠ operations of the hybrid protocol,
// plus the full BFV extras (ct x ct with relinearization, Galois rotations)
// that round out the SEAL-style substrate.
#pragma once

#include <memory>
#include <mutex>

#include "core/thread_annotations.hpp"

#include "bfv/keyswitch.hpp"
#include "bfv/multiply.hpp"
#include "bfv/polymul_engine.hpp"

namespace flash::bfv {

/// A size-3 ciphertext produced by ct x ct before relinearization:
/// dec = round(t/q * (c0 + c1 s + c2 s^2)).
struct Ciphertext3 {
  Poly c0, c1, c2;
};

class Evaluator {
 public:
  Evaluator(const BfvContext& ctx, PolyMulBackend backend,
            std::optional<fft::FxpFftConfig> approx_config = std::nullopt)
      : ctx_(ctx), engine_(ctx, backend, std::move(approx_config)) {}

  const PolyMulEngine& engine() const { return engine_; }
  PolyMulEngine& engine() { return engine_; }

  void add_inplace(Ciphertext& ct, const Ciphertext& other) const;
  void sub_inplace(Ciphertext& ct, const Ciphertext& other) const;
  void negate_inplace(Ciphertext& ct) const;

  /// ct ⊞ pt: c0 += Delta * m.
  void add_plain_inplace(Ciphertext& ct, const Plaintext& pt) const;
  /// ct ⊟ pt.
  void sub_plain_inplace(Ciphertext& ct, const Plaintext& pt) const;

  /// ct ⊠ pt through the engine's backend. The plaintext spectrum may be
  /// precomputed with transform_plain() and reused.
  Ciphertext multiply_plain(const Ciphertext& ct, const PlainSpectrum& w) const;
  Ciphertext multiply_plain(const Ciphertext& ct, const Plaintext& pt) const;

  PlainSpectrum transform_plain(const Plaintext& pt) const { return engine_.transform_plain(pt); }

  /// --- Spectral HConv pipeline (paper Fig. 4(b)) ---------------------------
  /// Transform a ciphertext once (both elements), point-wise multiply and
  /// accumulate any number of (ct, weight) pairs, and inverse-transform once
  /// per output ciphertext. This is the dataflow the accelerator implements:
  /// activation transforms are shared across output channels and channel
  /// tiles accumulate before the inverse.
  struct CiphertextSpectrum {
    CipherSpectrum c0, c1;
  };
  struct CiphertextAccumulator {
    SpectralAccumulator c0, c1;
  };
  CiphertextSpectrum transform_ciphertext(const Ciphertext& ct) const;
  void multiply_accumulate(const CiphertextSpectrum& ct_spec, const PlainSpectrum& w,
                           CiphertextAccumulator& accum) const;
  Ciphertext finalize(const CiphertextAccumulator& accum) const;

  /// --- Full BFV operations ------------------------------------------------
  /// ct x ct tensor product (exact CRT-based wide arithmetic).
  Ciphertext3 multiply(const Ciphertext& a, const Ciphertext& b) const;
  /// Fold the s^2 component back to a size-2 ciphertext.
  Ciphertext relinearize(const Ciphertext3& ct, const RelinKeys& keys) const;
  Ciphertext multiply_relin(const Ciphertext& a, const Ciphertext& b, const RelinKeys& keys) const;

  /// Apply the automorphism X -> X^g and switch back to the original key.
  Ciphertext apply_galois(const Ciphertext& ct, u64 galois_element, const GaloisKeys& keys) const;
  /// Batched-slot row rotation / row swap (BatchEncoder layout).
  Ciphertext rotate_rows(const Ciphertext& ct, int steps, const GaloisKeys& keys) const;
  Ciphertext rotate_columns(const Ciphertext& ct, const GaloisKeys& keys) const;

 private:
  Poly delta_scaled(const Plaintext& pt) const;
  const WideMultiplier& wide() const;

  const BfvContext& ctx_;
  mutable PolyMulEngine engine_;
  // Lazily built on the first ct x ct; the mutex makes the double-checked
  // initialization visible to the thread-safety analysis (a once_flag would
  // not be), and a WideMultiplier construction is far more expensive than an
  // uncontended lock acquisition per multiply.
  mutable std::mutex wide_mu_;
  mutable std::unique_ptr<WideMultiplier> wide_ FLASH_GUARDED_BY(wide_mu_);
};

}  // namespace flash::bfv
