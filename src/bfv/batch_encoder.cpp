#include "bfv/batch_encoder.hpp"

#include <stdexcept>
#include <unordered_map>

#include "hemath/primes.hpp"

namespace flash::bfv {

BatchEncoder::BatchEncoder(const BfvContext& ctx)
    : ctx_(ctx), t_ntt_([&] {
        const auto& p = ctx.params();
        if (!hemath::is_prime(p.t) || (p.t - 1) % (2 * p.n) != 0) {
          throw std::invalid_argument("BatchEncoder: t must be a prime = 1 mod 2N");
        }
        return hemath::NttTables(p.t, p.n);
      }()) {
  const auto& p = ctx_.params();
  const std::size_t n = p.n;
  const u64 m = 2 * static_cast<u64>(n);

  // Discover which root exponent each NTT output position evaluates at:
  // transform the monomial X; position k then holds psi^e_k for the odd
  // exponent e_k. A value->exponent table over all odd powers inverts it.
  std::unordered_map<u64, u64> value_to_exponent;
  value_to_exponent.reserve(n);
  u64 power = t_ntt_.psi();
  for (u64 e = 1; e < m; e += 2) {
    value_to_exponent.emplace(power, e);
    power = hemath::mul_mod(power, hemath::mul_mod(t_ntt_.psi(), t_ntt_.psi(), p.t), p.t);
  }
  std::vector<u64> x_poly(n, 0);
  x_poly[1] = 1;
  t_ntt_.forward(x_poly);
  ntt_index_to_exponent_.resize(n);
  std::unordered_map<u64, std::size_t> exponent_to_index;
  exponent_to_index.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto it = value_to_exponent.find(x_poly[k]);
    if (it == value_to_exponent.end()) throw std::logic_error("BatchEncoder: root discovery failed");
    ntt_index_to_exponent_[k] = it->second;
    exponent_to_index.emplace(it->second, k);
  }

  // Standard two-row layout: row 0 slot i at exponent 3^i, row 1 slot i at
  // exponent -(3^i) mod 2N.
  slot_to_ntt_index_.resize(n);
  u64 g = 1;
  for (std::size_t i = 0; i < n / 2; ++i) {
    slot_to_ntt_index_[i] = exponent_to_index.at(g);
    slot_to_ntt_index_[i + n / 2] = exponent_to_index.at(m - g);
    g = (g * 3) % m;
  }
}

Plaintext BatchEncoder::encode(const std::vector<i64>& values) const {
  const auto& p = ctx_.params();
  if (values.size() > p.n) throw std::invalid_argument("BatchEncoder::encode: too many values");
  std::vector<u64> slots_ntt(p.n, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    slots_ntt[slot_to_ntt_index_[i]] = hemath::from_signed(values[i], p.t);
  }
  t_ntt_.inverse(slots_ntt);
  Plaintext pt = ctx_.make_plaintext();
  pt.poly = Poly(p.t, std::move(slots_ntt));
  return pt;
}

std::vector<i64> BatchEncoder::decode(const Plaintext& pt) const {
  const auto& p = ctx_.params();
  std::vector<u64> coeffs = pt.poly.coeffs();
  t_ntt_.forward(coeffs);
  std::vector<i64> out(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    out[i] = hemath::to_signed(coeffs[slot_to_ntt_index_[i]], p.t);
  }
  return out;
}

std::vector<std::size_t> BatchEncoder::slot_permutation(u64 galois_element) const {
  const auto& p = ctx_.params();
  const u64 m = 2 * static_cast<u64>(p.n);
  // Slot s reads evaluation at exponent e_s; after X -> X^g the value at
  // exponent e is m(psi^(e*g)), so output slot s holds the input slot whose
  // exponent is e_s * g.
  std::unordered_map<u64, std::size_t> exponent_to_slot;
  for (std::size_t s = 0; s < p.n; ++s) {
    exponent_to_slot.emplace(ntt_index_to_exponent_[slot_to_ntt_index_[s]], s);
  }
  std::vector<std::size_t> perm(p.n);
  for (std::size_t s = 0; s < p.n; ++s) {
    const u64 e = ntt_index_to_exponent_[slot_to_ntt_index_[s]];
    perm[s] = exponent_to_slot.at(e * galois_element % m);
  }
  return perm;
}

}  // namespace flash::bfv
