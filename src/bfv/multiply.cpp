#include "bfv/multiply.hpp"

#include <cmath>
#include <stdexcept>

#include "hemath/primes.hpp"

namespace flash::bfv {

namespace {
using hemath::u128;

/// Bits needed for the worst-case centered product coefficient plus sign.
int required_bits(const BfvParams& p) {
  const double logq = std::log2(static_cast<double>(p.q));
  const double logn = std::log2(static_cast<double>(p.n));
  // |sum of N products of values <= q/2| <= N * q^2 / 4; +1 sign, +1 margin.
  return static_cast<int>(std::ceil(logn + 2.0 * logq - 2.0)) + 2;
}
}  // namespace

WideMultiplier::WideMultiplier(const BfvContext& ctx)
    : ctx_(ctx),
      aux_primes_([&] {
        const auto& p = ctx.params();
        const int need = required_bits(p);
        const int have = static_cast<int>(std::ceil(std::log2(static_cast<double>(p.q))));
        const int aux_bits = need - have;
        if (need > 126) {
          throw std::invalid_argument(
              "WideMultiplier: q too large for 128-bit CRT (need log2(N) + 2 log2(q) <= 124)");
        }
        // Split the auxiliary range into primes of <= 52 bits.
        const int count = (aux_bits + 51) / 52;
        const int size = (aux_bits + count - 1) / count;
        std::vector<u64> primes;
        u64 lo = u64{1} << (size - 1);
        while (primes.size() < static_cast<std::size_t>(count)) {
          const u64 cand = hemath::next_prime_congruent(lo, 2 * p.n);
          if (cand == p.q) {
            lo = cand + 1;
            continue;
          }
          primes.push_back(cand);
          lo = cand + 1;
        }
        return primes;
      }()),
      basis_([&] {
        std::vector<u64> moduli{ctx.params().q};
        moduli.insert(moduli.end(), aux_primes_.begin(), aux_primes_.end());
        return hemath::RnsBasis(std::move(moduli));
      }()) {
  for (u64 m : basis_.moduli()) limb_ntt_.emplace_back(m, ctx_.params().n);
}

void WideMultiplier::accumulate_product(const Poly& a, const Poly& b,
                                        std::vector<std::vector<u64>>& acc) const {
  const auto& p = ctx_.params();
  for (std::size_t limb = 0; limb < basis_.size(); ++limb) {
    const u64 mod = basis_.moduli()[limb];
    std::vector<u64> ra(p.n), rb(p.n);
    for (std::size_t i = 0; i < p.n; ++i) {
      ra[i] = hemath::from_signed(hemath::to_signed(a[i], p.q), mod);
      rb[i] = hemath::from_signed(hemath::to_signed(b[i], p.q), mod);
    }
    const std::vector<u64> prod = hemath::negacyclic_multiply(limb_ntt_[limb], ra, rb);
    auto& dst = acc[limb];
    if (dst.empty()) {
      dst = prod;
    } else {
      for (std::size_t i = 0; i < p.n; ++i) dst[i] = hemath::add_mod(dst[i], prod[i], mod);
    }
  }
}

Poly WideMultiplier::compose_and_scale(const std::vector<std::vector<u64>>& acc) const {
  const auto& p = ctx_.params();
  const u128 big_q = basis_.total_modulus();
  Poly out(p.q, p.n);
  std::vector<u64> residues(basis_.size());
  for (std::size_t i = 0; i < p.n; ++i) {
    for (std::size_t limb = 0; limb < basis_.size(); ++limb) residues[limb] = acc[limb][i];
    u128 x = basis_.compose(residues);
    const bool negative = x > big_q / 2;
    if (negative) x = big_q - x;
    // round(t * x / q) without overflowing 128 bits: split x = q*A + r.
    const u128 quotient = x / p.q;
    // flash-lint: allow(raw-mod): 128-bit scale-and-round split; the hemath helpers are u64-only
    const u64 remainder = static_cast<u64>(x % p.q);
    const u128 tr = static_cast<u128>(p.t) * remainder;
    const u64 rounded_rem = static_cast<u64>((tr + p.q / 2) / p.q);
    // flash-lint: allow(raw-mod): reducing fresh 128-bit intermediates into the modulus domain
    u64 res = hemath::mul_mod(p.t % p.q, static_cast<u64>(quotient % p.q), p.q);
    res = hemath::add_mod(res, rounded_rem % p.q, p.q);  // flash-lint: allow(raw-mod): rounded_rem is in [0, q^2), one reduction admits it
    out[i] = negative ? hemath::neg_mod(res, p.q) : res;
  }
  return out;
}

Poly WideMultiplier::scaled_product(const Poly& a, const Poly& b) const {
  std::vector<std::vector<u64>> acc(basis_.size());
  accumulate_product(a, b, acc);
  return compose_and_scale(acc);
}

Poly WideMultiplier::scaled_product_sum(const Poly& a, const Poly& b, const Poly& c,
                                        const Poly& d) const {
  // Accumulate both products in the RNS domain before the single rounding;
  // the basis is sized with one extra bit of margin for the sum.
  std::vector<std::vector<u64>> acc(basis_.size());
  accumulate_product(a, b, acc);
  accumulate_product(c, d, acc);
  return compose_and_scale(acc);
}

}  // namespace flash::bfv
