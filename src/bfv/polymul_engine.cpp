#include "bfv/polymul_engine.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "core/scratch.hpp"
#include "fft/transform_cache.hpp"
#include "hemath/pointwise.hpp"

namespace flash::bfv {

namespace {
/// Relaxed tally: counters are statistics, not synchronization.
inline void bump(std::atomic<std::uint64_t>& c, std::uint64_t by = 1) {
  c.fetch_add(by, std::memory_order_relaxed);
}
}  // namespace

PolyMulEngine::PolyMulEngine(const BfvContext& ctx, PolyMulBackend backend,
                             std::optional<fft::FxpFftConfig> approx_config)
    : ctx_(ctx), backend_(backend) {
  if (backend_ == PolyMulBackend::kApproxFft) {
    if (!approx_config) throw std::invalid_argument("PolyMulEngine: kApproxFft requires a config");
    approx_ = fft::shared_fxp_transform(ctx_.params().n, *approx_config);
  }
  if (backend_ == PolyMulBackend::kPow2) {
    if (!ctx_.params().q_is_pow2()) {
      throw std::invalid_argument("PolyMulEngine: kPow2 requires a power-of-two q (create_pow2)");
    }
    pow2_.emplace(std::countr_zero(ctx_.params().q));
  }
}

PlainSpectrum PolyMulEngine::transform_plain(const Plaintext& pt) const {
  const auto& p = ctx_.params();
  PlainSpectrum out;
  out.backend = backend_;
  bump(counters_.plain_transforms);
  switch (backend_) {
    case PolyMulBackend::kNtt: {
      std::vector<u64> lifted(p.n);
      for (std::size_t i = 0; i < p.n; ++i) {
        lifted[i] = hemath::from_signed(hemath::to_signed(pt.poly[i], p.t), p.q);
      }
      ctx_.ntt().forward(lifted);
      out.ntt = std::move(lifted);
      break;
    }
    case PolyMulBackend::kFft: {
      core::ScratchFrame frame(core::thread_scratch());
      std::span<double> vals = frame.alloc<double>(p.n);
      for (std::size_t i = 0; i < p.n; ++i) {
        vals[i] = static_cast<double>(hemath::to_signed(pt.poly[i], p.t));
      }
      out.fft.resize(p.n / 2);
      ctx_.fft().forward_into(vals, out.fft);
      break;
    }
    case PolyMulBackend::kApproxFft: {
      core::ScratchFrame frame(core::thread_scratch());
      std::span<double> vals = frame.alloc<double>(p.n);
      for (std::size_t i = 0; i < p.n; ++i) {
        vals[i] = static_cast<double>(hemath::to_signed(pt.poly[i], p.t));
      }
      out.fft.resize(p.n / 2);
      approx_->forward_into(vals, out.fft);
      break;
    }
    case PolyMulBackend::kPow2: {
      // Signed lift mod t into Z_{2^k}: negative weights wrap into the ring's
      // upper half, exactly what u64 two's-complement masking produces.
      out.pow2.resize(p.n);
      for (std::size_t i = 0; i < p.n; ++i) {
        out.pow2[i] = pow2_->from_signed(hemath::to_signed(pt.poly[i], p.t));
      }
      break;
    }
  }
  return out;
}

std::vector<fft::cplx> PolyMulEngine::transform_cipher(const Poly& ct_poly) const {
  const auto& p = ctx_.params();
  core::ScratchFrame frame(core::thread_scratch());
  std::span<double> vals = frame.alloc<double>(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    vals[i] = static_cast<double>(hemath::to_signed(ct_poly[i], p.q));
  }
  bump(counters_.cipher_transforms);
  std::vector<fft::cplx> out(p.n / 2);
  ctx_.fft().forward_into(vals, out);
  return out;
}

std::vector<u64> PolyMulEngine::transform_cipher_ntt(const Poly& ct_poly) const {
  std::vector<u64> vals = ct_poly.coeffs();
  ctx_.ntt().forward(vals);
  bump(counters_.cipher_transforms);
  return vals;
}

std::vector<fft::cplx> PolyMulEngine::pointwise(const std::vector<fft::cplx>& ct_spec,
                                                const PlainSpectrum& w) const {
  if (w.backend == PolyMulBackend::kNtt) {
    throw std::invalid_argument("PolyMulEngine::pointwise: NTT spectrum on FP path");
  }
  if (ct_spec.size() != w.fft.size()) throw std::invalid_argument("pointwise: size mismatch");
  std::vector<fft::cplx> out(ct_spec.size());
  for (std::size_t i = 0; i < ct_spec.size(); ++i) out[i] = ct_spec[i] * w.fft[i];
  bump(counters_.pointwise_products, ct_spec.size());
  return out;
}

Poly PolyMulEngine::inverse_to_poly(const std::vector<fft::cplx>& spec) const {
  const auto& p = ctx_.params();
  core::ScratchFrame frame(core::thread_scratch());
  std::span<double> vals = frame.alloc<double>(p.n);
  ctx_.fft().inverse_into(spec, vals, &frame.arena());
  bump(counters_.inverse_transforms);
  Poly out(p.q, p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    out[i] = hemath::from_signed(static_cast<i64>(std::llround(vals[i])), p.q);
  }
  return out;
}

CipherSpectrum PolyMulEngine::transform_cipher_spectrum(const Poly& ct_poly) const {
  CipherSpectrum spec;
  spec.backend = backend_;
  if (backend_ == PolyMulBackend::kNtt) {
    spec.ntt = transform_cipher_ntt(ct_poly);
  } else if (backend_ == PolyMulBackend::kPow2) {
    // No spectral domain mod 2^k: the "transform" is the residues themselves
    // (already < q = 2^k, so already mask-reduced).
    spec.pow2 = ct_poly.coeffs();
    bump(counters_.cipher_transforms);
  } else {
    spec.fft = transform_cipher(ct_poly);
  }
  return spec;
}

void PolyMulEngine::multiply_accumulate(const CipherSpectrum& ct_spec, const PlainSpectrum& w,
                                        SpectralAccumulator& accum) const {
  if (ct_spec.backend != backend_ || w.backend != backend_) {
    throw std::invalid_argument("multiply_accumulate: backend mismatch");
  }
  const auto& p = ctx_.params();
  if (backend_ == PolyMulBackend::kNtt) {
    if (accum.empty) {
      accum.backend = backend_;
      accum.ntt.assign(p.n, 0);
      accum.empty = false;
    }
    hemath::pointwise_mulmod_accumulate(accum.ntt.data(), ct_spec.ntt.data(), w.ntt.data(), p.n,
                                        p.q);
    bump(counters_.pointwise_products, p.n);
  } else if (backend_ == PolyMulBackend::kPow2) {
    if (accum.empty) {
      accum.backend = backend_;
      accum.pow2.assign(p.n, 0);
      accum.empty = false;
    }
    // Each accumulate is a full negacyclic product (there is no cheap
    // spectral-domain point product mod 2^k); the sum stays in coefficient
    // domain so finalize is still a single copy per output polynomial.
    core::ScratchFrame frame(core::thread_scratch());
    std::span<u64> prod = frame.alloc<u64>(p.n);
    hemath::negacyclic_mul_pow2_into(ct_spec.pow2.data(), w.pow2.data(), prod.data(), p.n, *pow2_,
                                     &frame.arena());
    hemath::pointwise_add_pow2(accum.pow2.data(), prod.data(), p.n, *pow2_);
    bump(counters_.pointwise_products, hemath::pow2_mult_count(p.n));
  } else {
    if (accum.empty) {
      accum.backend = backend_;
      accum.fft.assign(p.n / 2, fft::cplx{0.0, 0.0});
      accum.empty = false;
    }
    for (std::size_t i = 0; i < p.n / 2; ++i) accum.fft[i] += ct_spec.fft[i] * w.fft[i];
    bump(counters_.pointwise_products, p.n / 2);
  }
}

Poly PolyMulEngine::finalize(const SpectralAccumulator& accum) const {
  if (accum.empty) throw std::invalid_argument("finalize: empty accumulator");
  if (accum.backend != backend_) throw std::invalid_argument("finalize: backend mismatch");
  const auto& p = ctx_.params();
  if (backend_ == PolyMulBackend::kNtt) {
    std::vector<u64> coeffs = accum.ntt;
    ctx_.ntt().inverse(coeffs);
    bump(counters_.inverse_transforms);
    return Poly(p.q, std::move(coeffs));
  }
  if (backend_ == PolyMulBackend::kPow2) {
    std::vector<u64> coeffs = accum.pow2;
    bump(counters_.inverse_transforms);
    return Poly(p.q, std::move(coeffs));
  }
  return inverse_to_poly(accum.fft);
}

Poly PolyMulEngine::multiply(const Poly& ct_poly, const PlainSpectrum& w) const {
  const auto& p = ctx_.params();
  if (w.backend != backend_) throw std::invalid_argument("PolyMulEngine::multiply: backend mismatch");
  switch (backend_) {
    case PolyMulBackend::kNtt: {
      std::vector<u64> ct = transform_cipher_ntt(ct_poly);
      std::vector<u64> prod;
      ctx_.ntt().pointwise(ct, w.ntt, prod);
      bump(counters_.pointwise_products, p.n);
      ctx_.ntt().inverse(prod);
      bump(counters_.inverse_transforms);
      return Poly(p.q, std::move(prod));
    }
    case PolyMulBackend::kFft:
    case PolyMulBackend::kApproxFft: {
      const std::vector<fft::cplx> ct_spec = transform_cipher(ct_poly);
      return inverse_to_poly(pointwise(ct_spec, w));
    }
    case PolyMulBackend::kPow2: {
      bump(counters_.cipher_transforms);
      std::vector<u64> prod(p.n);
      hemath::negacyclic_mul_pow2_into(ct_poly.coeffs().data(), w.pow2.data(), prod.data(), p.n,
                                       *pow2_);
      bump(counters_.pointwise_products, hemath::pow2_mult_count(p.n));
      bump(counters_.inverse_transforms);
      return Poly(p.q, std::move(prod));
    }
  }
  throw std::logic_error("PolyMulEngine::multiply: unreachable");
}

}  // namespace flash::bfv
