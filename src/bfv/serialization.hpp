// Binary serialization for BFV objects (keys, ciphertexts, plaintexts).
//
// A deliberately simple little-endian format with a magic header and type
// tags; every loader validates sizes and moduli against the header so a
// truncated or mismatched buffer fails loudly instead of decoding garbage.
//
// Adversarial-input contract (the wire layer feeds these loaders bytes from
// untrusted peers): every failure — truncation, oversized length fields,
// inconsistent headers — raises SerializationError. In particular a length
// field is checked against the bytes actually remaining in the buffer BEFORE
// any allocation sized by it, so a forged "degree = 2^60" header costs the
// attacker a rejected frame, never a bad_alloc or an OOM-killed server.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bfv/context.hpp"
#include "bfv/keyswitch.hpp"

namespace flash::bfv {

using Bytes = std::vector<std::uint8_t>;

/// Typed failure for every loader in this header (and the wire codecs built
/// on them). Derives from std::runtime_error so pre-existing catch sites
/// keep working; new code should catch this type.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what) : std::runtime_error(what) {}
};

/// Hard ceiling on any ring degree a loader will honor (2^20 is far past
/// every parameter set this codebase instantiates). Length fields are
/// additionally capped by the bytes actually present in the buffer.
inline constexpr u64 kMaxPolyDegree = u64{1} << 20;

/// Append-only writer.
class ByteWriter {
 public:
  void write_u64(u64 v);
  void write_i64(i64 v) { write_u64(static_cast<u64>(v)); }
  void write_u8(std::uint8_t v) { buffer_.push_back(v); }
  const Bytes& bytes() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

/// Bounds-checked reader; throws SerializationError on underflow.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& bytes) : bytes_(bytes) {}
  u64 read_u64();
  i64 read_i64() { return static_cast<i64>(read_u64()); }
  std::uint8_t read_u8();
  bool exhausted() const { return pos_ == bytes_.size(); }
  /// Bytes left to read — what every element-count header must be capped
  /// against before the loader allocates.
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const Bytes& bytes_;
  std::size_t pos_ = 0;
};

Bytes serialize(const BfvParams& params);
BfvParams deserialize_params(ByteReader& reader);

void serialize(const Poly& poly, ByteWriter& writer);
Poly deserialize_poly(ByteReader& reader);

Bytes serialize(const BfvParams& params, const Plaintext& pt);
Plaintext deserialize_plaintext(const BfvContext& ctx, const Bytes& bytes);

Bytes serialize(const BfvParams& params, const Ciphertext& ct);
Ciphertext deserialize_ciphertext(const BfvContext& ctx, const Bytes& bytes);

Bytes serialize(const BfvParams& params, const SecretKey& sk);
SecretKey deserialize_secret_key(const BfvContext& ctx, const Bytes& bytes);

Bytes serialize(const BfvParams& params, const PublicKey& pk);
PublicKey deserialize_public_key(const BfvContext& ctx, const Bytes& bytes);

Bytes serialize(const BfvParams& params, const KeySwitchKey& key);
KeySwitchKey deserialize_key_switch_key(const BfvContext& ctx, const Bytes& bytes);

}  // namespace flash::bfv
