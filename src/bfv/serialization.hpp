// Binary serialization for BFV objects (keys, ciphertexts, plaintexts).
//
// A deliberately simple little-endian format with a magic header and type
// tags; every loader validates sizes and moduli against the header so a
// truncated or mismatched buffer fails loudly instead of decoding garbage.
#pragma once

#include <cstdint>
#include <vector>

#include "bfv/context.hpp"
#include "bfv/keyswitch.hpp"

namespace flash::bfv {

using Bytes = std::vector<std::uint8_t>;

/// Append-only writer.
class ByteWriter {
 public:
  void write_u64(u64 v);
  void write_i64(i64 v) { write_u64(static_cast<u64>(v)); }
  void write_u8(std::uint8_t v) { buffer_.push_back(v); }
  const Bytes& bytes() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

/// Bounds-checked reader; throws std::runtime_error on underflow.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& bytes) : bytes_(bytes) {}
  u64 read_u64();
  i64 read_i64() { return static_cast<i64>(read_u64()); }
  std::uint8_t read_u8();
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const Bytes& bytes_;
  std::size_t pos_ = 0;
};

Bytes serialize(const BfvParams& params);
BfvParams deserialize_params(ByteReader& reader);

void serialize(const Poly& poly, ByteWriter& writer);
Poly deserialize_poly(ByteReader& reader);

Bytes serialize(const BfvParams& params, const Plaintext& pt);
Plaintext deserialize_plaintext(const BfvContext& ctx, const Bytes& bytes);

Bytes serialize(const BfvParams& params, const Ciphertext& ct);
Ciphertext deserialize_ciphertext(const BfvContext& ctx, const Bytes& bytes);

Bytes serialize(const BfvParams& params, const SecretKey& sk);
SecretKey deserialize_secret_key(const BfvContext& ctx, const Bytes& bytes);

Bytes serialize(const BfvParams& params, const PublicKey& pk);
PublicKey deserialize_public_key(const BfvContext& ctx, const Bytes& bytes);

Bytes serialize(const BfvParams& params, const KeySwitchKey& key);
KeySwitchKey deserialize_key_switch_key(const BfvContext& ctx, const Bytes& bytes);

}  // namespace flash::bfv
