#include "bfv/noise.hpp"

#include <algorithm>
#include <cmath>

namespace flash::bfv {

double predicted_fresh_noise_bits(const BfvParams& params) {
  // Fresh ciphertext noise is dominated by the error polynomial (the message
  // is scaled by Delta exactly, so no Delta-rounding noise arises at
  // encryption; the floor(q/t) mismatch only shows up at decode, attenuated
  // by t/q). High-probability bound: 6 sigma.
  return std::log2(6.0 * params.error_sigma + 1.0);
}

double predicted_plain_mult_noise_bits(const BfvParams& params, double input_noise_bits,
                                       std::size_t weight_nnz, double max_abs) {
  // ct x pt multiplies the noise polynomial by the plaintext; the worst-case
  // growth is the plaintext l1 norm <= nnz * max_abs, the typical growth is
  // sqrt(nnz) * max_abs. We report the high-probability (2*sqrt) bound.
  (void)params;
  const double growth = 2.0 * std::sqrt(static_cast<double>(std::max<std::size_t>(weight_nnz, 1))) * max_abs;
  return input_noise_bits + std::log2(growth + 1.0);
}

double NoiseEstimator::fresh() const {
  // pk encryption: u*e + e1 + e2*s with ternary u, s: ~sigma * sqrt(2N) * 2.
  const double sigma = params_.error_sigma;
  const double n = static_cast<double>(params_.n);
  return std::log2(2.0 * sigma * std::sqrt(2.0 * n) + 6.0 * sigma + 1.0);
}

double NoiseEstimator::after_add(double a_bits, double b_bits) const {
  const double hi = std::max(a_bits, b_bits);
  const double lo = std::min(a_bits, b_bits);
  return hi + std::log2(1.0 + std::exp2(lo - hi));
}

double NoiseEstimator::after_multiply_plain(double noise_bits, std::size_t nnz,
                                            double max_abs) const {
  const double growth = 2.0 * std::sqrt(static_cast<double>(std::max<std::size_t>(nnz, 1))) * max_abs;
  return noise_bits + std::log2(growth + 1.0);
}

double NoiseEstimator::after_multiply_ct(double a_bits, double b_bits) const {
  // Standard BFV bound: v_mult <~ t * sqrt(2N) * (v_a + v_b) plus
  // message-norm cross terms (||m1|| v_b + ||m2|| v_a), covered by the
  // constant for low-bit quantized messages.
  const double t_bits = std::log2(static_cast<double>(params_.t));
  const double n_bits = 0.5 * std::log2(2.0 * static_cast<double>(params_.n));
  return t_bits + n_bits + after_add(a_bits, b_bits) + 2.5;
}

double NoiseEstimator::after_key_switch(double noise_bits, int digit_bits) const {
  const int q_bits = static_cast<int>(std::ceil(std::log2(static_cast<double>(params_.q))));
  const double levels = std::ceil(static_cast<double>(q_bits) / digit_bits);
  // Each digit contributes ~T * sigma * sqrt(N) noise; levels add in rms.
  const double ks = static_cast<double>(digit_bits) +
                    std::log2(params_.error_sigma * std::sqrt(static_cast<double>(params_.n) * levels) + 1.0) +
                    1.0;
  return after_add(noise_bits, ks);
}

double approx_error_headroom_bits(const BfvParams& params, double current_noise_bits) {
  // Additive FFT error e_fft on (c0, c1) appears in decryption as
  // e0 + e1*s; with ternary s of ~N/2 nonzeros the amplification is about
  // sqrt(N). Tolerable when noise + amplified error < q/(2t).
  const double ceiling = params.noise_ceiling_bits();
  const double amplification = 0.5 * std::log2(static_cast<double>(params.n));
  const double headroom = ceiling - 1.0;  // 1 bit of safety under the ceiling
  // Remaining budget after current noise, shared with the amplification.
  const double budget = headroom - std::log2(std::exp2(current_noise_bits) + 1.0);
  return budget - amplification;
}

}  // namespace flash::bfv
