#include "analysis/fxp_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "analysis/interval.hpp"
#include "hemath/bitrev.hpp"

namespace flash::analysis {

namespace {

double saturation_limit(int width) { return std::ldexp(1.0, width - 1) - 1.0; }

/// Whole bits of slack between the proven bound and the saturator limit
/// (negative when the bound overshoots). Capped to the data width so empty
/// (all-zero) stages do not report infinite slack.
int guard_bits_of(double bound, double limit, int width) {
  const double b = std::max(bound, 1.0);
  if (b > limit) return -static_cast<int>(std::ceil(std::log2(b / limit)));
  return std::min(width, static_cast<int>(std::floor(std::log2(limit / b))));
}

StageReport make_report(int stage, int frac, double bound, double adder_bound,
                        double value_bound, double error_bound, int width,
                        const AnalyzerOptions& opts) {
  StageReport r;
  r.stage = stage;
  r.frac_bits = frac;
  r.mantissa_bound = bound;
  r.adder_bound = adder_bound;
  r.sat_limit = saturation_limit(width);
  r.value_bound = value_bound;
  r.error_bound = error_bound;
  // Under the PR-2 bug variant the adder output is also clamped at the input
  // fraction scale, so both cuts must fit; the sound datapath only narrows
  // at the stage output register.
  const double check =
      (opts.clamp_adder_pre_requantize && stage >= 1) ? std::max(bound, adder_bound) : bound;
  r.guard_bits = guard_bits_of(check, r.sat_limit, width);
  if (check > r.sat_limit) {
    r.verdict = StageVerdict::kSaturationPossible;
  } else if (r.guard_bits > opts.wasteful_guard_bits) {
    r.verdict = StageVerdict::kWidthWasteful;
  } else {
    r.verdict = StageVerdict::kProvenSafe;
  }
  return r;
}

void validate_config(std::size_t m, const fft::FxpFftConfig& config, int log_m) {
  if (config.stage_frac_bits.size() != static_cast<std::size_t>(log_m)) {
    throw std::invalid_argument("analyze_fxp_fft: stage_frac_bits must have log2(M) entries");
  }
  if (config.data_width < 4 || config.data_width > 62) {
    throw std::invalid_argument("analyze_fxp_fft: data_width out of range [4, 62]");
  }
  if (m < 2) throw std::invalid_argument("analyze_fxp_fft: M must be >= 2");
}

/// Core propagation over an explicit input wire vector (standard order).
/// Mirrors FxpFft::forward exactly: same twiddle table, same stage/stride
/// indexing, same requantize placement.
AnalysisResult analyze_wires(std::size_t m, const fft::FxpFftConfig& config,
                             std::vector<ComplexInterval> wires,
                             const sparsefft::SparseFftPlan* plan, const AnalyzerOptions& opts) {
  const int log_m = hemath::log2_exact(m);
  validate_config(m, config, log_m);
  if (plan && plan->size() != m) {
    throw std::invalid_argument("analyze_fxp_fft: plan size mismatch");
  }
  const auto twiddles =
      fft::quantize_fft_twiddles(m, +1, config.twiddle_k, config.twiddle_min_exp);

  AnalysisResult res;
  res.m = m;
  res.config = config;
  res.stages.reserve(static_cast<std::size_t>(log_m) + 1);

  // Stage 0: the input quantizer (the quantize rounding is already in the
  // wires' round_err; here we only record the mantissa cut).
  int frac = config.input_frac_bits;
  {
    double peak = 0.0, vmax = 0.0, emax = 0.0;
    for (const ComplexInterval& z : wires) {
      peak = std::max(peak, mantissa_bound(z, frac));
      vmax = std::max(vmax, z.component_bound());
      emax = std::max(emax, z.total_error());
    }
    res.stages.push_back(make_report(0, frac, peak, 0.0, vmax, emax, config.data_width, opts));
  }

  hemath::bit_reverse_permute(wires);

  for (int s = 1; s <= log_m; ++s) {
    const int out_frac = config.stage_frac_bits[static_cast<std::size_t>(s - 1)];
    double stage_peak = 0.0, adder_peak = 0.0, vmax = 0.0, emax = 0.0;

    auto note = [&](const ComplexInterval& z) {
      stage_peak = std::max(stage_peak, mantissa_bound(z, out_frac));
      vmax = std::max(vmax, z.component_bound());
      emax = std::max(emax, z.total_error());
    };
    auto full_butterfly = [&](ComplexInterval& u, ComplexInterval& v,
                              const fft::QuantizedTwiddle& w) {
      const ComplexInterval t = twiddle_mul_interval(v, w, frac, config.rounding);
      // u + t and u - t share the same worst-case bound.
      const ComplexInterval sum = add_interval(u, t);
      adder_peak = std::max(adder_peak, mantissa_bound(sum, frac));
      const ComplexInterval out = requantize_interval(sum, frac, out_frac, config.rounding);
      u = out;
      v = out;
      note(out);
    };

    if (plan) {
      for (const sparsefft::ButterflyOp& op : plan->stage(s - 1)) {
        ComplexInterval& u = wires[op.u];
        ComplexInterval& v = wires[op.v];
        switch (op.kind) {
          case sparsefft::OpKind::kFull:
            full_butterfly(u, v, twiddles[op.twiddle_index]);
            break;
          case sparsefft::OpKind::kMulOnly: {
            const ComplexInterval t =
                twiddle_mul_interval(v, twiddles[op.twiddle_index], frac, config.rounding);
            adder_peak = std::max(adder_peak, mantissa_bound(t, frac));
            const ComplexInterval out = requantize_interval(t, frac, out_frac, config.rounding);
            u = out;  // outputs are (Wv, -Wv): identical bounds
            v = out;
            note(out);
            break;
          }
          case sparsefft::OpKind::kCopy: {
            // Pure duplication, but the value still crosses the stage
            // register, so it is re-scaled to the stage's fraction format.
            const ComplexInterval out = requantize_interval(u, frac, out_frac, config.rounding);
            u = out;
            v = out;
            note(out);
            break;
          }
        }
      }
    } else {
      const std::size_t half = std::size_t{1} << (s - 1);
      const std::size_t len = half << 1;
      const std::size_t stride = m >> s;
      for (std::size_t block = 0; block < m; block += len) {
        for (std::size_t j = 0; j < half; ++j) {
          full_butterfly(wires[block + j], wires[block + j + half], twiddles[j * stride]);
        }
      }
    }

    res.stages.push_back(
        make_report(s, out_frac, stage_peak, adder_peak, vmax, emax, config.data_width, opts));
    frac = out_frac;
  }

  res.output_error_bound = res.stages.back().error_bound;
  return res;
}

}  // namespace

bool AnalysisResult::overflow_free() const {
  return first_saturation_possible() == nullptr;
}

const StageReport* AnalysisResult::first_saturation_possible() const {
  for (const StageReport& r : stages) {
    if (r.verdict == StageVerdict::kSaturationPossible) return &r;
  }
  return nullptr;
}

int AnalysisResult::wasteful_stages() const {
  int count = 0;
  for (const StageReport& r : stages) {
    if (r.verdict == StageVerdict::kWidthWasteful) ++count;
  }
  return count;
}

AnalysisResult analyze_fxp_fft(std::size_t m, const fft::FxpFftConfig& config,
                               const AnalyzerOptions& options) {
  // FxpFft quantizes with llround: half an input-ulp per component.
  const double qulp = 0.5 * std::ldexp(1.0, -config.input_frac_bits);
  std::vector<ComplexInterval> wires(m, input_interval(options.input_max_abs, qulp));
  return analyze_wires(m, config, std::move(wires), nullptr, options);
}

AnalysisResult analyze_fxp_fft(std::size_t m, const fft::FxpFftConfig& config,
                               const sparsefft::SparseFftPlan& plan,
                               const AnalyzerOptions& options) {
  const double qulp = 0.5 * std::ldexp(1.0, -config.input_frac_bits);
  // The plan's pattern is expressed in standard order (pre bit-reversal) —
  // but the ButterflyOps address the bit-reversed array, and inactive wires
  // stay exactly zero throughout, so seeding actives from the op graph
  // itself would be circular. Simplest sound seeding: every wire a stage-1
  // op reads is live, everything else is zero. Stage-1 op inputs are
  // exactly the bit-reversed positions of active pattern elements.
  std::vector<ComplexInterval> wires(m, zero_interval());
  const ComplexInterval live = input_interval(options.input_max_abs, qulp);
  std::vector<char> active(m, 0);
  for (const sparsefft::ButterflyOp& op : plan.stage(0)) {
    active[op.u] = 1;
    active[op.v] = 1;
  }
  // analyze_wires bit-reverses its input, so mark actives in standard order
  // by inverting the permutation (bit reversal is an involution).
  hemath::bit_reverse_permute(active);
  for (std::size_t i = 0; i < m; ++i) {
    if (active[i]) wires[i] = live;
  }
  return analyze_wires(m, config, std::move(wires), &plan, options);
}

AnalysisResult analyze_negacyclic(std::size_t n, const fft::FxpFftConfig& config,
                                  const AnalyzerOptions& options) {
  if (n < 4 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("analyze_negacyclic: bad degree");
  }
  const std::size_t m = n / 2;
  const double c = options.input_max_abs;
  const double qulp = 0.5 * std::ldexp(1.0, -config.input_frac_bits);
  const double base = std::numbers::pi / static_cast<double>(n);

  // Fold + quantized twist: z_s = (a_s + i a_{s+m}) * zeta_q^s with
  // |a| <= c, exactly as FxpNegacyclicTransform builds its input.
  std::vector<ComplexInterval> wires(m);
  for (std::size_t s = 0; s < m; ++s) {
    const fft::QuantizedTwiddle tw = fft::quantize_twiddle(
        std::polar(1.0, base * static_cast<double>(s)), config.twiddle_k, config.twiddle_min_exp);
    wires[s] = twisted_input_interval(c, tw, qulp);
  }
  return analyze_wires(m, config, std::move(wires), nullptr, options);
}

const StageReport* first_interval_violation(const AnalysisResult& result,
                                            const fft::FxpFftStats& stats) {
  const std::size_t count = std::min(result.stages.size(), stats.stage_peak_mantissa.size());
  for (std::size_t i = 0; i < count; ++i) {
    if (static_cast<double>(stats.stage_peak_mantissa[i]) > result.stages[i].mantissa_bound) {
      return &result.stages[i];
    }
  }
  return nullptr;
}

}  // namespace flash::analysis
