#include "analysis/interval.hpp"

#include <algorithm>
#include <cmath>

namespace flash::analysis {

namespace {

constexpr double kSqrt2 = 1.4142135623730951;

// Double-precision bound arithmetic accumulates its own rounding; inflate
// every derived bound by one part in 10^12 so "proven" stays on the safe
// side of the exact rational bound.
double up(double v) { return v * (1.0 + 1e-12); }

/// Per-component rounding introduced by one shift-right at `frac` fraction
/// bits: half an ulp for round-to-nearest, a full ulp for truncation.
double round_ulp(int frac, fft::RoundingMode mode) {
  const double ulp = std::ldexp(1.0, -frac);
  return mode == fft::RoundingMode::kRoundToNearest ? 0.5 * ulp : ulp;
}

/// Count of digits in a CSD value that require a right shift (only those
/// round; non-negative exponents are exact left shifts).
int rounding_digits(const fft::CsdValue& w) {
  int count = 0;
  for (const fft::CsdDigit& d : w.digits) {
    if (d.exponent < 0) ++count;
  }
  return count;
}

}  // namespace

double ComplexInterval::component_bound() const {
  return std::min(std::max(re_max, im_max), mag_max);
}

ComplexInterval input_interval(double component_max, double quantize_ulp) {
  ComplexInterval z;
  z.re_max = component_max;
  z.im_max = component_max;
  z.mag_max = up(kSqrt2 * component_max);
  z.round_err = up(kSqrt2 * quantize_ulp);  // one rounding per component
  z.drift_err = 0.0;
  return z;
}

ComplexInterval zero_interval() { return ComplexInterval{}; }

ComplexInterval twisted_input_interval(double coeff_max, const fft::QuantizedTwiddle& twist,
                                       double quantize_ulp) {
  const double tr = std::abs(twist.re.value);
  const double ti = std::abs(twist.im.value);
  const double t_mag = std::hypot(twist.re.value, twist.im.value);
  ComplexInterval z;
  // Box: |Re((a+ib)t)| = |a Re t - b Im t| <= (|Re t| + |Im t|) * coeff_max.
  z.re_max = up((tr + ti) * coeff_max);
  z.im_max = z.re_max;
  z.mag_max = up(t_mag * kSqrt2 * coeff_max);
  z.re_max = std::min(z.re_max, z.mag_max);
  z.im_max = std::min(z.im_max, z.mag_max);
  z.round_err = up(kSqrt2 * quantize_ulp);
  z.drift_err = up(std::hypot(twist.re.error, twist.im.error) * kSqrt2 * coeff_max);
  return z;
}

ComplexInterval twiddle_mul_interval(const ComplexInterval& z, const fft::QuantizedTwiddle& w,
                                     int frac_bits, fft::RoundingMode mode) {
  const double wr = std::abs(w.re.value);
  const double wi = std::abs(w.im.value);
  const double w_mag = std::hypot(w.re.value, w.im.value);

  // Component bounds of the input, tightened by the disc.
  const double zr = std::min(z.re_max, z.mag_max);
  const double zi = std::min(z.im_max, z.mag_max);

  ComplexInterval out;
  // Box: |Re(wz)| <= |wr||Re z| + |wi||Im z|, |Im(wz)| <= |wi||Re z| + |wr||Im z|.
  out.re_max = up(wr * zr + wi * zi);
  out.im_max = up(wi * zr + wr * zi);
  // Disc: |wz| = |w||z|.
  out.mag_max = up(w_mag * z.mag_max);
  out.re_max = std::min(out.re_max, out.mag_max);
  out.im_max = std::min(out.im_max, out.mag_max);

  // Datapath rounding: the previous error is scaled by |w_q|, and each of
  // the four real CSD products rounds once per negative-exponent digit. A
  // component's two products contribute (digits(re)+digits(im)) roundings;
  // the component error pair folds into the complex bound with sqrt(2).
  const double digit_round =
      round_ulp(frac_bits, mode) * static_cast<double>(rounding_digits(w.re) + rounding_digits(w.im));
  out.round_err = up(w_mag * z.round_err + kSqrt2 * digit_round);

  // Twiddle drift: |w_q z_hat - w_e z_exact| <= |w_q||z_hat - z_exact|
  //                                            + |w_q - w_e||z_exact|
  // with |z_exact| <= |z_hat| + drift <= mag_max + drift_err.
  const double dw = std::hypot(w.re.error, w.im.error);
  out.drift_err = up(w_mag * z.drift_err + dw * (z.mag_max + z.drift_err));
  return out;
}

ComplexInterval add_interval(const ComplexInterval& a, const ComplexInterval& b) {
  ComplexInterval out;
  out.re_max = up(std::min(a.re_max, a.mag_max) + std::min(b.re_max, b.mag_max));
  out.im_max = up(std::min(a.im_max, a.mag_max) + std::min(b.im_max, b.mag_max));
  out.mag_max = up(std::min(a.mag_max + b.mag_max, std::hypot(out.re_max, out.im_max)));
  out.round_err = up(a.round_err + b.round_err);
  out.drift_err = up(a.drift_err + b.drift_err);
  return out;
}

ComplexInterval requantize_interval(const ComplexInterval& z, int frac_from, int frac_to,
                                    fft::RoundingMode mode) {
  ComplexInterval out = z;
  if (frac_from > frac_to) {
    // One rounding per component; fold the pair into the complex error.
    out.round_err = up(out.round_err + kSqrt2 * round_ulp(frac_to, mode));
  }
  // Widening (frac_from < frac_to) is an exact left shift; value bounds are
  // scale-independent either way.
  return out;
}

double mantissa_bound(const ComplexInterval& z, int frac_bits) {
  // The hardware mantissa realizes z_fxp = z_hat + (rounding), so the
  // saturator sees at most (component bound + round_err) * 2^frac. Twiddle
  // drift is *not* added: the value bounds already use the quantized
  // twiddle magnitudes. The +1.0 absorbs any residual sub-ulp slop and
  // keeps the comparison sound when the bound lands exactly on the limit.
  return up(std::ldexp(z.component_bound() + z.round_err, frac_bits)) + 1.0;
}

}  // namespace flash::analysis
