// Worst-case interval arithmetic for the fixed-point FFT datapath.
//
// A ComplexInterval bounds one wire of the butterfly network. The reference
// point is the *model value* z_hat: the value the datapath would compute
// with the quantized twiddles but exact real arithmetic. Three bounds form
// the value interval for z_hat — separate magnitudes for the real and
// imaginary components (a box) and a bound on the complex magnitude (a
// disc). Both are sound; their intersection is what keeps the analysis
// tight: trivial twiddles (1, +/-i) grow the box exactly, while chains of
// rotating twiddles are capped by the disc (a rotation never grows |z|, but
// compounds sqrt(2) per stage in a pure box analysis).
//
// Two error terms ride along:
//   round_err — |z_fxp - z_hat|: rounding of the fixed-point datapath
//               (input quantize, CSD shift-add truncation, stage
//               requantize). This is what the saturation check adds to the
//               value bound, because the hardware mantissa realizes z_fxp.
//   drift_err — |z_hat - z_exact|: deviation introduced by the twiddle
//               tables themselves (CsdValue::error). Kept separate so the
//               saturation check does not double-count it — the value
//               bounds already use the quantized twiddle magnitudes.
// The total quantization error versus the exact-twiddle FFT is
// round_err + drift_err.
//
// All bounds are in the value domain (mantissa / 2^frac); the analyzer
// converts to mantissa units only at the stage output register where the
// hardware saturates. Every operation rounds its bound up, so "proven
// overflow-free" is sound with respect to the bit-accurate FxpFft simulator.
#pragma once

#include <cstddef>

#include "fft/fxp_fft.hpp"
#include "fft/twiddle.hpp"

namespace flash::analysis {

struct ComplexInterval {
  double re_max = 0.0;     // bound on |Re z_hat|
  double im_max = 0.0;     // bound on |Im z_hat|
  double mag_max = 0.0;    // bound on |z_hat|
  double round_err = 0.0;  // bound on |z_fxp - z_hat| (complex magnitude)
  double drift_err = 0.0;  // bound on |z_hat - z_exact| (twiddle drift)

  /// Tightest available bound on either component of z_hat.
  double component_bound() const;

  /// Total quantization error versus the exact-twiddle exact-arithmetic FFT.
  double total_error() const { return round_err + drift_err; }
};

/// Interval of an input element whose components are bounded by
/// component_max (the disc bound is derived: |z| <= sqrt(2) * component_max).
/// `quantize_ulp` is the value-domain rounding of the input quantizer
/// (half an ulp at input_frac_bits, per component), zero for an exact input.
ComplexInterval input_interval(double component_max, double quantize_ulp);

/// The exactly-zero wire (inactive element of a sparse plan).
ComplexInterval zero_interval();

/// Interval of one folded+twisted negacyclic input element: z = (a + ib) * t
/// with |a|, |b| <= coeff_max and t the CSD-quantized twist factor. The
/// twist's own quantization error lands in drift_err; `quantize_ulp` is the
/// per-component input-quantizer rounding (as for input_interval).
ComplexInterval twisted_input_interval(double coeff_max, const fft::QuantizedTwiddle& twist,
                                       double quantize_ulp);

/// Bound of w * z for a CSD-quantized twiddle, including the per-digit
/// shift-add rounding at `frac_bits` fraction bits and the twiddle table's
/// own quantization error (CsdValue::error).
ComplexInterval twiddle_mul_interval(const ComplexInterval& z, const fft::QuantizedTwiddle& w,
                                     int frac_bits, fft::RoundingMode mode);

/// Bound of a + b (and equally of a - b: bounds are symmetric in sign).
ComplexInterval add_interval(const ComplexInterval& a, const ComplexInterval& b);

/// Stage output register: re-scaling from frac_from to frac_to fraction bits
/// adds one rounding when the shift narrows. Value bounds are unchanged.
ComplexInterval requantize_interval(const ComplexInterval& z, int frac_from, int frac_to,
                                    fft::RoundingMode mode);

/// Upper bound on the |mantissa| this interval can produce at `frac_bits`
/// fraction bits, including the datapath rounding error and a final margin.
/// This is the number the stage saturator compares against 2^(width-1)-1.
double mantissa_bound(const ComplexInterval& z, int frac_bits);

}  // namespace flash::analysis
