// End-to-end decryption-correctness certification of one HConv unit.
//
// PR 3's interval analyzer proves the FXP weight transform saturation-free;
// this layer composes that obligation with a BFV noise-growth model of the
// *whole* pipeline — fresh-encrypt noise, secret-share wrap of the plaintext
// message, ct×pt accumulation per backend (NTT/Shoup exact, FP-FFT roundoff,
// FXP-FFT spectrum error), the masking step and decrypt rounding — into one
// machine-checkable verdict per unit:
//
//   * kProvenCorrectDecryption — the certified noise bound stays below the
//     decryption ceiling q/(2t); decryption is correct except with
//     probability <= 2^fail_prob_log2 over the protocol's own randomness
//     (shares, encryption noise), for *every* activation input;
//   * kFailurePossibleWithWitness — a concrete activation pattern (see
//     materialize_witness) pushes the expected-achievable noise past the
//     ceiling: replaying it through the real protocol corrupts decryption;
//   * kInconclusive — the certified bound exceeds the ceiling but the
//     witness bound does not reach it (the gap between the λ-sigma upper
//     bound and the achievable peak), or the FXP transform itself cannot be
//     proven overflow-free so the spectrum-error term is unbounded.
//
// Noise model (invariant-noise form: decryption is correct iff the final
// |v| < q/(2t); bits below are log2 of the bound on |v·q/t|-scale noise,
// comparable against params.noise_ceiling_bits()):
//
//   v_fresh = e1 + e2·s - e·u          Var = σ²(1 + 4N/3)  per coefficient
//   share wrap: both halves of a secret-shared plaintext sum to M = m + t·b
//     with E[M (centered)] = 0 and Var(M/t) <= 1/4; through the conv the
//     wrap quotient K contributes -r·K (r = q mod t) per coefficient with
//     Var(K) <= V_max/4, V_max = max_i Σ_j w_j² over share slots feeding
//     output coefficient i (an exact sparse negacyclic convolution of w²
//     with the encoder's occupied-slot indicator);
//   ct×pt: v·w scales the fresh noise by the weight l2 norm; the FXP-FFT
//     backend additionally injects the *concrete* weight-spectrum error
//     ΔW = FXP(w) - FFT(w), whose contribution is amplified by the decrypt
//     convolution of the c1 component with the ternary secret:
//     Var = (1 + 2N/3)·(q²/(12M))·Σ_k|ΔW_k|²;
//   masking adds one more wrap unit (the server's uniform mask), and the
//   FP inverse transform's llround adds <= 0.5 per component.
//
// certified  = r + λ·sqrt(Σ variances), λ = 6 (per-coefficient tail 2^-29.9,
//              union-bounded over all output coefficients in fail_prob_log2);
// worst_case = the deterministic l1-norm ledger (10σ noise tail cut);
// witness    = the expected peak achieved by the all-(t/2) activation, which
//              maximizes the share-wrap variance (P(wrap) = 1/2 per slot).
//
// Sparse/merged weight transforms and the batched SoA paths are covered by
// the same certificate: the cross-level differential tiers (ARCHITECTURE.md
// §11) pin them bit-identical to the scalar paths the model describes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/fxp_analyzer.hpp"
#include "bfv/params.hpp"
#include "bfv/polymul_engine.hpp"
#include "fft/fxp_fft.hpp"
#include "tensor/tensor.hpp"

namespace flash::analysis {

enum class PipelineVerdict {
  kProvenCorrectDecryption,
  kFailurePossibleWithWitness,
  kInconclusive,
};

const char* to_string(PipelineVerdict v);

/// One stride-1 HConv unit: the padded input patch a single
/// HConvProtocol::run_stream call consumes, together with the backend that
/// multiplies it. (Strided convs decompose into these units exactly —
/// protocol/conv_geometry.hpp — and the phase shares sum mod t, which is
/// noise-free, so certifying every unit certifies the plan.)
struct HConvUnitDesc {
  bfv::BfvParams params;
  bfv::PolyMulBackend backend = bfv::PolyMulBackend::kNtt;
  /// Required iff backend == kApproxFft.
  std::optional<fft::FxpFftConfig> approx_config;
  std::size_t in_c = 1, in_h = 1, in_w = 1;  // stride-1, already-padded patch
  tensor::Tensor4 weights{1, 1, 1, 1};       // in_channels must equal in_c
};

/// One additive term of the noise ledger, in bits (log2 of its contribution
/// to the certified bound; sqrt-of-variance scale for the stochastic terms).
struct NoiseTerm {
  std::string name;
  double bits = 0;
};

struct PipelineCertificate {
  PipelineVerdict verdict = PipelineVerdict::kInconclusive;

  double ceiling_bits = 0;         // params.noise_ceiling_bits()
  double certified_noise_bits = 0; // high-probability upper bound (λ = 6)
  double worst_case_noise_bits = 0;// deterministic l1 ledger (10σ tail cut)
  double witness_noise_bits = 0;   // expected peak of the witness input
  double margin_bits = 0;          // ceiling - certified (negative: unproven)
  double fail_prob_log2 = 0;       // union-bounded tail mass of `certified`

  /// FXP interval proof of the weight transform (PR 3 analyzer); trivially
  /// true for the exact backends.
  bool transform_overflow_free = true;

  /// Worst output channel's additive ledger (what `certified` is made of).
  std::vector<NoiseTerm> ledger;
  std::string detail;  // human-readable summary of the binding constraint
};

/// λ of the certified bound and the witness peak factor. Exposed so tests
/// can reason about the gap between the two.
inline constexpr double kCertifiedTailLambda = 6.0;
inline constexpr double kWitnessPeakFactor = 3.0;

/// Certify one unit. Exact and cheap relative to executing it: the dominant
/// costs are one sparse w²-convolution per output channel and (FXP backend
/// only) one approximate + one exact weight transform per channel tile.
PipelineCertificate certify_hconv_unit(const HConvUnitDesc& desc);

/// The concrete adversarial activation for a unit: every cleartext value
/// t/2, which drives the per-slot share-wrap probability to 1/2 (maximal
/// wrap variance) — the input family that saturates the certified bound's
/// dominant term. Replaying it through the real protocol on an
/// under-budgeted parameter set reproduces a decryption failure
/// (tests/test_pipeline_certifier.cpp pins this).
struct PipelineWitness {
  tensor::Tensor3 activation{1, 1, 1};
  double predicted_noise_bits = 0;
  std::string description;
};

PipelineWitness materialize_witness(const HConvUnitDesc& desc);

}  // namespace flash::analysis
