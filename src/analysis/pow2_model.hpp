// Wrap-freedom analysis for the Z_{2^k} (kPow2) polymul backend.
//
// The pow2 backend is exact-or-broken: unlike the approximate FFT, whose
// error is a continuous budget certified by the interval analyzer, Z_{2^k}
// arithmetic either computes the negacyclic product exactly (every signed
// intermediate fits in k bits, so two's-complement wraparound is invisible)
// or silently aliases mod 2^k. The proof obligation is therefore a single
// worst-case magnitude bound on the signed result coefficients:
//
//   |c_i| = |sum_{j+l = i mod- n} (+/-) a_j * w_l|  <=  nnz(w) * max_w * max_x
//
// (an l1 bound on the negacyclic convolution: each of the nnz nonzero
// weights contributes at most max_w * max_x to any one output coefficient,
// and the negacyclic sign flip does not change magnitudes). With a headroom
// of required_bits = ceil(log2(bound)) + 1 (sign bit), the product is
// wrap-free iff required_bits <= k.
//
// This is the obligation the dse BackendExplorer discharges before admitting
// a pow2 design point, the same way SafetyCache discharges the interval
// analyzer's no-overflow obligation for approximate-FFT points.
#pragma once

#include <cstddef>
#include <cstdint>

namespace flash::analysis {

/// Inputs of the wrap proof: operand geometry and magnitude bounds. max_x is
/// the bound on the *signed representatives* of the ciphertext-side operand
/// (q/2 for uniform residues mod q = 2^k; tighter for share-reduced inputs).
struct Pow2Obligation {
  std::size_t n = 0;           // ring degree
  std::size_t weight_nnz = 0;  // nonzero weight coefficients
  std::uint64_t max_w = 0;     // bound on |signed weight|
  std::uint64_t max_x = 0;     // bound on |signed ct-side coefficient|
};

/// Result of the wrap proof for a candidate ring width k.
struct Pow2WrapAnalysis {
  int k = 0;                  // candidate ring width (q = 2^k)
  int required_bits = 0;      // signed bits the worst-case product needs
  bool wrap_free = false;     // required_bits <= k: result provably exact
  int headroom_bits = 0;      // k - required_bits (negative when unsafe)
};

/// Discharge (or refute) the wrap-freedom obligation at width k.
/// Sound and exact for the l1 bound above: uses 128-bit intermediate
/// arithmetic, so no double rounding can flip a verdict near the boundary.
Pow2WrapAnalysis analyze_pow2_polymul(const Pow2Obligation& ob, int k);

/// Smallest k in [2, 62] that is wrap-free for this obligation, or 0 when
/// even k = 62 wraps (the point is inadmissible at any supported width).
int min_wrap_free_k(const Pow2Obligation& ob);

}  // namespace flash::analysis
