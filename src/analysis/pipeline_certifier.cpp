#include "analysis/pipeline_certifier.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "encoding/encoder.hpp"
#include "fft/negacyclic.hpp"
#include "fft/transform_cache.hpp"
#include "hemath/modular.hpp"

namespace flash::analysis {

namespace {

using hemath::i64;

// Relative-error envelope for the double-precision FFT datapath (forward,
// pointwise accumulate, inverse, llround). The true envelope is a few ulps
// (~2^-50 at N=4096); 2^-46 leaves a wide margin while staying orders of
// magnitude below the share-wrap terms it rides with.
constexpr double kFpRelEps = 1.0 / 70368744177664.0;  // 2^-46

// Worst-case cut of the rounded-Gaussian error tail (per-draw probability
// ~2^-66 at sigma = 3.2): the deterministic ledger treats |e| <= 10 sigma.
constexpr double kWorstCaseSigmas = 10.0;

double log2_safe(double v) { return v > 0 ? std::log2(v) : -1e9; }

struct ChannelLedger {
  double certified = 0;   // r·wraps + λ·sqrt(variances)
  double worst_case = 0;  // deterministic l1 ledger
  double witness = 0;     // expected peak of the t/2 activation
  double l1 = 0;
  std::vector<NoiseTerm> terms;
};

}  // namespace

const char* to_string(PipelineVerdict v) {
  switch (v) {
    case PipelineVerdict::kProvenCorrectDecryption: return "proven-correct-decryption";
    case PipelineVerdict::kFailurePossibleWithWitness: return "failure-possible-with-witness";
    case PipelineVerdict::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

PipelineCertificate certify_hconv_unit(const HConvUnitDesc& desc) {
  const bfv::BfvParams& p = desc.params;
  const std::size_t n = p.n;
  const double q = static_cast<double>(p.q);
  const double r = static_cast<double>(p.q % p.t);
  const double sigma = p.error_sigma;
  const double nd = static_cast<double>(n);
  // Var of the fresh invariant noise e1 + e2·s - e·u (u, s ternary).
  const double fresh_var = sigma * sigma * (1.0 + 4.0 * nd / 3.0);
  // Amplification of any c1-side additive error by the decrypt convolution
  // with the ternary secret (variance form / absolute form).
  const double secret_var_amp = 1.0 + 2.0 * nd / 3.0;
  const double secret_abs_amp = 1.0 + nd;

  if (desc.weights.in_channels() != desc.in_c) {
    throw std::invalid_argument("certify_hconv_unit: channels do not match the weights");
  }
  if (desc.backend == bfv::PolyMulBackend::kApproxFft && !desc.approx_config.has_value()) {
    throw std::invalid_argument("certify_hconv_unit: kApproxFft requires an approx_config");
  }
  const bool is_fp = desc.backend != bfv::PolyMulBackend::kNtt;
  const bool is_approx = desc.backend == bfv::PolyMulBackend::kApproxFft;

  PipelineCertificate cert;
  cert.ceiling_bits = p.noise_ceiling_bits();

  const encoding::ConvEncoder enc(n, desc.in_c, desc.in_h, desc.in_w,
                                  desc.weights.kernel_h(), desc.weights.kernel_w());
  const std::size_t tiles = enc.geometry().channel_tiles();
  const std::size_t m_out = desc.weights.out_channels();

  // Occupied activation slots per channel tile: every coefficient the
  // encoder maps carries a uniform share and can wrap, including padding
  // zeros (pad happens before sharing).
  std::vector<std::vector<std::size_t>> occupied(tiles);
  {
    tensor::Tensor3 ones(desc.in_c, desc.in_h, desc.in_w);
    for (auto& v : ones.data()) v = 1;
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      const std::vector<i64> coeffs = enc.encode_activation(ones, tile);
      for (std::size_t i = 0; i < n; ++i) {
        if (coeffs[i] != 0) occupied[tile].push_back(i);
      }
    }
  }

  // FXP-transform overflow obligation: the interval analyzer must prove the
  // weight datapath saturation-free, otherwise the concrete spectra below
  // are not representative of the whole weight family.
  double max_w = 0;
  for (const i64 v : desc.weights.data()) {
    max_w = std::max(max_w, std::abs(static_cast<double>(v)));
  }
  if (is_approx) {
    AnalyzerOptions opts;
    opts.input_max_abs = std::max(1.0, max_w);
    cert.transform_overflow_free =
        analyze_negacyclic(n, *desc.approx_config, opts).overflow_free();
  }

  std::shared_ptr<const fft::NegacyclicFft> exact;
  std::shared_ptr<const fft::FxpNegacyclicTransform> fxp;
  if (is_approx) {
    exact = fft::shared_negacyclic_fft(n);
    fxp = fft::shared_fxp_transform(n, *desc.approx_config);
  }

  // Per output channel: the final ciphertext accumulates every channel tile,
  // so the variance terms sum over tiles before the worst channel is taken.
  ChannelLedger worst;
  bool first = true;
  std::vector<double> v_conv(n);
  std::vector<fft::cplx> spec_fxp(n / 2), spec_exact(n / 2);
  std::vector<double> wd(n);
  for (std::size_t m = 0; m < m_out; ++m) {
    double l1 = 0, l2sq = 0, delta2 = 0, delta_abs = 0;
    std::fill(v_conv.begin(), v_conv.end(), 0.0);
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      const std::vector<i64> wc = enc.encode_weight(desc.weights, m, tile);
      for (std::size_t j = 0; j < n; ++j) {
        if (wc[j] == 0) continue;
        const double w = static_cast<double>(wc[j]);
        l1 += std::abs(w);
        l2sq += w * w;
        // Negacyclic conv of w² with the occupied-slot indicator: the wrap
        // variance feeding each output coefficient (signs are irrelevant,
        // variances add).
        for (const std::size_t i : occupied[tile]) {
          std::size_t k = j + i;
          if (k >= n) k -= n;
          v_conv[k] += w * w;
        }
      }
      if (is_approx) {
        for (std::size_t j = 0; j < n; ++j) wd[j] = static_cast<double>(wc[j]);
        fxp->forward_into(wd, spec_fxp);
        exact->forward_into(wd, spec_exact);
        for (std::size_t k = 0; k < n / 2; ++k) {
          const fft::cplx d = spec_fxp[k] - spec_exact[k];
          delta2 += std::norm(d);
          delta_abs += std::abs(d);
        }
      }
    }
    const double v_max = *std::max_element(v_conv.begin(), v_conv.end());

    ChannelLedger led;
    led.l1 = l1;

    // Stochastic terms (variances; certified adds λ·sqrt of the sum).
    const double rlwe_var = fresh_var * l2sq;
    const double wrap_var = r * r * v_max / 4.0;
    const double approx_var =
        is_approx ? secret_var_amp * (q * q / (12.0 * static_cast<double>(n / 2))) * delta2 : 0.0;
    const double fp_var =
        is_fp ? kFpRelEps * kFpRelEps * (q * q / 12.0) * l2sq * secret_var_amp : 0.0;
    const double round_var = is_fp ? secret_var_amp / 12.0 : 0.0;
    const double var_total = rlwe_var + wrap_var + approx_var + fp_var + round_var;

    // Deterministic wraps: the server's mask re-lift (<= 1 quotient unit)
    // plus the centered-quotient rounding of the product (<= 1/2).
    const double det_wraps = 1.5 * r;

    led.certified = det_wraps + kCertifiedTailLambda * std::sqrt(var_total);
    led.witness = l1 > 0 ? r + kWitnessPeakFactor * std::sqrt(var_total) : det_wraps;
    led.worst_case = kWorstCaseSigmas * sigma * (1.0 + 2.0 * nd) * l1  // rlwe l1 ledger
                     + r * (l1 + 1.5)                                  // every slot wraps
                     + (is_approx ? secret_abs_amp * (q / std::sqrt(2.0)) * delta_abs : 0.0)
                     + (is_fp ? secret_abs_amp * (kFpRelEps * q * std::max(1.0, l1) + 0.5) : 0.0);

    led.terms.push_back({"mask+quotient wraps (det)", log2_safe(det_wraps)});
    led.terms.push_back({"share-wrap fluctuation", log2_safe(r * std::sqrt(v_max) / 2.0)});
    led.terms.push_back({"fresh rlwe x weights", log2_safe(std::sqrt(rlwe_var))});
    if (is_approx) led.terms.push_back({"fxp spectrum error", log2_safe(std::sqrt(approx_var))});
    if (is_fp) {
      led.terms.push_back({"fp roundoff envelope", log2_safe(std::sqrt(fp_var))});
      led.terms.push_back({"decrypt llround", log2_safe(std::sqrt(round_var))});
    }

    if (first || led.certified > worst.certified) {
      if (!first) {
        // Keep the globally worst witness/worst_case even if another channel
        // binds the certified bound.
        led.witness = std::max(led.witness, worst.witness);
        led.worst_case = std::max(led.worst_case, worst.worst_case);
      }
      worst = std::move(led);
      first = false;
    } else {
      worst.witness = std::max(worst.witness, led.witness);
      worst.worst_case = std::max(worst.worst_case, led.worst_case);
    }
  }

  cert.certified_noise_bits = log2_safe(worst.certified);
  cert.worst_case_noise_bits = log2_safe(worst.worst_case);
  cert.witness_noise_bits = log2_safe(worst.witness);
  cert.margin_bits = cert.ceiling_bits - cert.certified_noise_bits;
  cert.ledger = std::move(worst.terms);

  // Union bound over every coefficient of every output channel's final
  // ciphertext (conservative: extraction only reads the output positions).
  const double per_coeff_tail = std::erfc(kCertifiedTailLambda / std::sqrt(2.0));
  cert.fail_prob_log2 =
      std::log2(static_cast<double>(n * m_out)) + std::log2(per_coeff_tail);

  const bool proven = cert.transform_overflow_free && cert.margin_bits > 0;
  if (proven) {
    cert.verdict = PipelineVerdict::kProvenCorrectDecryption;
  } else if (cert.witness_noise_bits >= cert.ceiling_bits && worst.l1 > 0) {
    cert.verdict = PipelineVerdict::kFailurePossibleWithWitness;
  } else {
    cert.verdict = PipelineVerdict::kInconclusive;
  }

  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s: certified 2^%.2f vs ceiling 2^%.2f (margin %.2f bits), "
                "witness 2^%.2f, worst-case 2^%.2f, fail<=2^%.1f%s",
                to_string(cert.verdict), cert.certified_noise_bits, cert.ceiling_bits,
                cert.margin_bits, cert.witness_noise_bits, cert.worst_case_noise_bits,
                cert.fail_prob_log2,
                cert.transform_overflow_free ? "" : "; FXP transform NOT overflow-free");
  cert.detail = buf;
  return cert;
}

PipelineWitness materialize_witness(const HConvUnitDesc& desc) {
  const PipelineCertificate cert = certify_hconv_unit(desc);
  PipelineWitness w;
  w.activation = tensor::Tensor3(desc.in_c, desc.in_h, desc.in_w);
  const i64 half = static_cast<i64>(desc.params.t / 2);
  for (auto& v : w.activation.data()) v = half;
  w.predicted_noise_bits = cert.witness_noise_bits;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "all-coefficients t/2 activation (share-wrap probability 1/2 per slot); "
                "expected noise peak 2^%.2f vs ceiling 2^%.2f",
                cert.witness_noise_bits, cert.ceiling_bits);
  w.description = buf;
  return w;
}

}  // namespace flash::analysis
