#include "analysis/pow2_model.hpp"

#include "hemath/modular.hpp"

namespace flash::analysis {

namespace {

using flash::hemath::u128;

/// Signed bits needed to hold any value in [-bound, bound]: the magnitude
/// bits of `bound` plus the sign bit. bound = 0 needs 1 bit (the zero poly).
int signed_bits_for(u128 bound) {
  int bits = 0;
  while (bound != 0) {
    bound >>= 1;
    ++bits;
  }
  return bits + 1;
}

}  // namespace

Pow2WrapAnalysis analyze_pow2_polymul(const Pow2Obligation& ob, int k) {
  Pow2WrapAnalysis out;
  out.k = k;
  // l1 bound on the negacyclic convolution. nnz and the magnitude bounds are
  // all <= 2^64, so the triple product fits u128 only when we cap the
  // factors; anything past 2^127 is unprovable at k <= 64 anyway, so clamp.
  const u128 nnz = ob.weight_nnz;
  const u128 w = ob.max_w;
  const u128 x = ob.max_x;
  u128 bound = 0;
  bool overflow = false;
  if (nnz != 0 && w != 0 && x != 0) {
    const u128 wx = w * x;
    if (w != 0 && wx / w != x) overflow = true;
    bound = wx * nnz;
    if (!overflow && nnz != 0 && bound / nnz != wx) overflow = true;
  }
  out.required_bits = overflow ? 129 : signed_bits_for(bound);
  out.wrap_free = !overflow && out.required_bits <= k;
  out.headroom_bits = k - out.required_bits;
  return out;
}

int min_wrap_free_k(const Pow2Obligation& ob) {
  const Pow2WrapAnalysis at_max = analyze_pow2_polymul(ob, 62);
  if (!at_max.wrap_free) return 0;
  return at_max.required_bits < 2 ? 2 : at_max.required_bits;
}

}  // namespace flash::analysis
