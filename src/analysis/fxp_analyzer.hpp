// Static overflow/bit-width verification of approximate-FFT design points.
//
// The analyzer rebuilds the exact dataflow graph the bit-accurate FxpFft
// simulator executes — the same quantized twiddle tables, the same stage /
// twiddle indexing, the same requantize points — and pushes a worst-case
// ComplexInterval through every wire. The output is a per-stage verdict:
//
//   * kProvenSafe         — no input within the declared bound can reach the
//                           saturator limit at this stage's output register;
//   * kSaturationPossible — the worst-case mantissa bound exceeds the limit
//                           (the bound is the concrete witness: an input
//                           family achieving a constant fraction of it
//                           exists, so the stage cannot be certified);
//   * kWidthWasteful      — proven safe with more than `wasteful_guard_bits`
//                           whole bits of slack between the bound and the
//                           limit: the stage pays for width it cannot use.
//
// "Proven" is sound with respect to FxpFft: every interval operation rounds
// up (see interval.hpp), so an empirical mantissa above the bound is a bug
// in one of the two implementations — flash_fuzz cross-checks exactly that.
//
// The `clamp_adder_pre_requantize` option analyzes the *broken* datapath
// PR 2's fuzzer caught (butterfly adder saturating at the input fraction
// scale, before the requantizer's right shift): the regression suite pins
// that the analyzer flags it statically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fft/fxp_fft.hpp"
#include "sparsefft/planner.hpp"

namespace flash::analysis {

enum class StageVerdict {
  kProvenSafe,
  kSaturationPossible,
  kWidthWasteful,
};

/// Verdict for one pipeline cut. Stage 0 is the input quantizer; stages
/// 1..log2(M) are the butterfly stages' output registers.
struct StageReport {
  int stage = 0;
  int frac_bits = 0;          // fraction bits of this cut's mantissas
  StageVerdict verdict = StageVerdict::kProvenSafe;
  double mantissa_bound = 0;  // proven bound on |mantissa| at this cut
  double adder_bound = 0;     // pre-requantize bound at the input scale (stage >= 1)
  double sat_limit = 0;       // 2^(width-1) - 1
  int guard_bits = 0;         // floor(log2(limit / bound)); < 0 iff saturation-possible
  double value_bound = 0;     // worst-case |component| in the value domain
  double error_bound = 0;     // accumulated quantization error vs the exact FFT
};

struct AnalysisResult {
  std::size_t m = 0;
  fft::FxpFftConfig config;
  std::vector<StageReport> stages;  // log2(M) + 1 entries, stage 0 first

  double output_error_bound = 0;    // per-element |error| bound of the final spectrum

  bool overflow_free() const;
  /// First stage that cannot be proven safe, or nullptr.
  const StageReport* first_saturation_possible() const;
  int wasteful_stages() const;
};

struct AnalyzerOptions {
  /// Bound on the magnitude of each real input component: |Re z| and |Im z|
  /// of every FFT input element for analyze_fxp_fft, |a_i| of every
  /// polynomial coefficient for analyze_negacyclic.
  double input_max_abs = 1.0;
  /// Slack beyond which a proven-safe stage is reported width-wasteful.
  int wasteful_guard_bits = 2;
  /// Analyze the PR-2 bug variant: the butterfly adder saturates at the
  /// *input* fraction scale, before the stage requantizer.
  bool clamp_adder_pre_requantize = false;
};

/// Dense M-point FFT (the FxpFft::forward dataflow).
AnalysisResult analyze_fxp_fft(std::size_t m, const fft::FxpFftConfig& config,
                               const AnalyzerOptions& options);

/// Sparse-scheduled M-point FFT: inactive wires carry exact zeros, kCopy /
/// kMulOnly butterflies propagate accordingly. `plan` must be built for the
/// same M.
AnalysisResult analyze_fxp_fft(std::size_t m, const fft::FxpFftConfig& config,
                               const sparsefft::SparseFftPlan& plan,
                               const AnalyzerOptions& options);

/// Negacyclic weight transform of degree n (the FxpNegacyclicTransform
/// dataflow): fold to n/2 points, multiply by the CSD-quantized twist, then
/// the dense FFT. input_max_abs bounds the real polynomial coefficients.
AnalysisResult analyze_negacyclic(std::size_t n, const fft::FxpFftConfig& config,
                                  const AnalyzerOptions& options);

/// Cross-check an empirical run against a proof: returns the report of the
/// first stage whose observed peak mantissa exceeds the proven bound, or
/// nullptr if every observation is inside its interval. `stats` must come
/// from a transform with the same config/size (stage_peak_mantissa index 0
/// is the input quantizer, matching AnalysisResult::stages).
const StageReport* first_interval_violation(const AnalysisResult& result,
                                            const fft::FxpFftStats& stats);

}  // namespace flash::analysis
