// Compares two flash_bench_schema JSON files and fails on perf regressions.
//
//   flash_benchdiff baseline.json current.json [--tolerance 0.15]
//
// For every record name present in both files, the current value must not
// exceed baseline * (1 + tolerance). Lower-is-better is assumed for every
// unit the benches emit (ns, mm2, W). Names present in only one file are
// reported but do not fail the run — benches gain and lose cases across PRs;
// the gate is about the common set drifting.
//
// Dependency-free by design (like flash_lint): the parser handles exactly the
// schema bench_json.hpp writes — a flat "results" array of objects with
// string "name" and numeric "value" — plus arbitrary whitespace and field
// order, and rejects anything without "flash_bench_schema": 1.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchFile {
  std::string binary;
  std::map<std::string, double> values;
};

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

/// Parses a JSON string literal at s[i] (must be '"'). Handles the escapes
/// bench_json emits; \uXXXX is passed through verbatim (names never need it).
bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out.push_back(s[i]);
    } else {
      out.push_back(s[i]);
    }
    ++i;
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

bool parse_number(const std::string& s, std::size_t& i, double& out) {
  const char* start = s.c_str() + i;
  char* end = nullptr;
  out = std::strtod(start, &end);
  if (end == start) return false;
  i += static_cast<std::size_t>(end - start);
  return true;
}

/// Scans one {...} object, collecting "name" (string) and "value" (number).
/// Other fields are skipped by value type.
bool parse_record(const std::string& s, std::size_t& i, std::string& name, double& value,
                  bool& have_name, bool& have_value) {
  skip_ws(s, i);
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  have_name = have_value = false;
  while (true) {
    skip_ws(s, i);
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    std::string key;
    if (!parse_string(s, i, key)) return false;
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    skip_ws(s, i);
    if (i >= s.size()) return false;
    if (s[i] == '"') {
      std::string sval;
      if (!parse_string(s, i, sval)) return false;
      if (key == "name") {
        name = sval;
        have_name = true;
      }
    } else {
      double nval = 0.0;
      if (!parse_number(s, i, nval)) return false;
      if (key == "value") {
        value = nval;
        have_value = true;
      }
    }
    skip_ws(s, i);
    if (i < s.size() && s[i] == ',') ++i;
  }
}

bool parse_bench_file(const std::string& path, BenchFile& out, std::string& err) {
  bool ok = false;
  const std::string text = read_file(path, ok);
  if (!ok) {
    err = "cannot read " + path;
    return false;
  }
  if (text.find("\"flash_bench_schema\"") == std::string::npos) {
    err = path + ": not a flash_bench_schema file";
    return false;
  }
  // Schema version check: the field must be 1.
  std::size_t v = text.find("\"flash_bench_schema\"");
  v = text.find(':', v);
  if (v == std::string::npos) {
    err = path + ": malformed schema field";
    return false;
  }
  ++v;
  double version = 0.0;
  skip_ws(text, v);
  if (!parse_number(text, v, version) || version != 1.0) {
    err = path + ": unsupported flash_bench_schema version";
    return false;
  }
  const std::size_t bin = text.find("\"binary\"");
  if (bin != std::string::npos) {
    std::size_t i = text.find(':', bin);
    if (i != std::string::npos) {
      ++i;
      skip_ws(text, i);
      parse_string(text, i, out.binary);
    }
  }
  std::size_t i = text.find("\"results\"");
  if (i == std::string::npos) {
    err = path + ": missing results array";
    return false;
  }
  i = text.find('[', i);
  if (i == std::string::npos) {
    err = path + ": malformed results array";
    return false;
  }
  ++i;
  while (true) {
    skip_ws(text, i);
    if (i >= text.size()) {
      err = path + ": unterminated results array";
      return false;
    }
    if (text[i] == ']') break;
    std::string name;
    double value = 0.0;
    bool have_name = false, have_value = false;
    if (!parse_record(text, i, name, value, have_name, have_value)) {
      err = path + ": malformed record";
      return false;
    }
    if (have_name && have_value) out.values[name] = value;
    skip_ws(text, i);
    if (i < text.size() && text[i] == ',') ++i;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double tolerance = 0.15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::atof(arg.c_str() + 12);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: flash_benchdiff baseline.json current.json [--tolerance 0.15]\n");
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr, "usage: flash_benchdiff baseline.json current.json [--tolerance 0.15]\n");
    return 2;
  }
  BenchFile base, cur;
  std::string err;
  if (!parse_bench_file(paths[0], base, err) || !parse_bench_file(paths[1], cur, err)) {
    std::fprintf(stderr, "flash_benchdiff: %s\n", err.c_str());
    return 2;
  }

  int regressions = 0;
  int compared = 0;
  std::printf("%-44s %14s %14s %8s\n", "benchmark", "baseline", "current", "ratio");
  for (const auto& [name, base_v] : base.values) {
    auto it = cur.values.find(name);
    if (it == cur.values.end()) {
      std::printf("%-44s %14.1f %14s %8s\n", name.c_str(), base_v, "(missing)", "-");
      continue;
    }
    ++compared;
    const double cur_v = it->second;
    const double ratio = base_v > 0.0 ? cur_v / base_v : (cur_v > 0.0 ? 1e9 : 1.0);
    const bool regressed = ratio > 1.0 + tolerance;
    if (regressed) ++regressions;
    std::printf("%-44s %14.1f %14.1f %7.3fx%s\n", name.c_str(), base_v, cur_v, ratio,
                regressed ? "  REGRESSION" : "");
  }
  for (const auto& [name, cur_v] : cur.values) {
    if (!base.values.count(name)) {
      std::printf("%-44s %14s %14.1f %8s\n", name.c_str(), "(new)", cur_v, "-");
    }
  }
  std::printf("\n%d compared, %d regression(s), tolerance %.0f%%\n", compared, regressions,
              tolerance * 100.0);
  return regressions > 0 ? 1 : 0;
}
