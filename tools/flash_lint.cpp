// flash_lint: project-specific domain lint for the FLASH tree.
//
// clang-tidy catches generic C++ bugs; these rules encode *project*
// invariants that no generic checker knows about:
//
//   raw-mod        Modulus-domain arithmetic outside src/hemath must go
//                  through mul_mod/add_mod/... — a raw `x % q` on a u64 that
//                  already sits in [0, q) is either redundant or, far worse,
//                  a sign that a product was formed without the 128-bit
//                  widening the hemath helpers guarantee.
//   raw-rng        std::mt19937_64 may only be constructed in
//                  src/hemath/sampler.* and src/testing/generators.*.
//                  Everyone else derives a stream with derive_stream_seed()
//                  (directly or via a documented wrapper) so that seeds
//                  printed in failure logs replay deterministically and
//                  parallel tasks never share a generator.
//   narrowing-fxp  In the fixed-point FFT path (src/fft/*fxp*), casts from
//                  the wide accumulator type to a narrower integer are only
//                  legal after saturation; anywhere else they silently drop
//                  overflow bits the interval analyzer proved could be set.
//   simd-dispatch  Dispatch sites outside src/hemath/simd* must query the
//                  SIMD level through level_at_least(), never
//                  active_simd_level() directly — `== kAvx2` equality checks
//                  silently turned AVX2 kernels off when kAvx512 was added.
//
// Intentional boundary crossings are annotated in-source:
//
//     ... code ...  // flash-lint: allow(raw-mod): reason
//
// (same line or the immediately preceding line). The reason is mandatory —
// an allow() without one is itself reported.
//
// Usage:  flash_lint [-p <builddir>] [<repo-root>]
//
// With -p, the file list comes from <builddir>/compile_commands.json (plus
// all headers under src/); without it, the src/ tree is walked directly.
// Exit status: 0 = clean, 1 = findings, 2 = usage/setup error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Rule {
  std::string name;
  std::regex pattern;
  std::string message;
  bool (*applies)(const std::string& rel);
};

/// Forward-slashed path relative to the repo root.
std::string relative_path(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  std::string s = (ec ? file : rel).generic_string();
  while (s.rfind("./", 0) == 0) s.erase(0, 2);
  return s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool in_src_outside_hemath(const std::string& rel) {
  return starts_with(rel, "src/") && !starts_with(rel, "src/hemath/");
}

bool rng_rule_applies(const std::string& rel) {
  if (!starts_with(rel, "src/")) return false;
  if (starts_with(rel, "src/hemath/sampler")) return false;
  if (starts_with(rel, "src/testing/generators")) return false;
  return true;
}

bool fxp_fft_path(const std::string& rel) {
  return starts_with(rel, "src/fft/") && rel.find("fxp") != std::string::npos;
}

bool outside_simd_dispatch(const std::string& rel) {
  // The dispatch layer itself (simd.hpp/.cpp and the simd_batch SoA kernels)
  // legitimately reads the raw level; everyone else goes through
  // level_at_least().
  return starts_with(rel, "src/") && !starts_with(rel, "src/hemath/simd");
}

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"raw-mod",
       // `% q`, `% p.q`, `% ctx->modulus`, ... : a modulo whose right operand
       // is a modulus-named identifier or member.
       std::regex(R"(%\s*(?:[A-Za-z_][A-Za-z0-9_]*\s*(?:\.|->)\s*)?(?:q|modulus|prime)\b)"),
       "raw % on a modulus-domain value outside src/hemath; use the "
       "hemath mul_mod/add_mod/reduce helpers",
       &in_src_outside_hemath},
      {"raw-rng",
       // Construction of a mt19937_64 (named object or temporary) — as
       // opposed to taking one by reference or declaring a default member.
       std::regex(R"(mt19937(?:_64)?\s+[A-Za-z_][A-Za-z0-9_]*\s*[({]|mt19937(?:_64)?\s*[({])"),
       "std::mt19937_64 constructed outside hemath/sampler and "
       "testing/generators; derive the seed with derive_stream_seed()",
       &rng_rule_applies},
      {"narrowing-fxp",
       std::regex(R"(static_cast<\s*(?:flash::)?(?:hemath::)?(?:i8|i16|i32|i64|std::int8_t|std::int16_t|std::int32_t|std::int64_t|int|short)\s*>)"),
       "narrowing integer cast in the FXP FFT path; only the saturation "
       "helper may drop accumulator bits",
       &fxp_fft_path},
      {"simd-dispatch",
       std::regex(R"(active_simd_level\s*\()"),
       "direct active_simd_level() call outside src/hemath/simd; dispatch "
       "through level_at_least() so AVX2 kernels stay eligible at kAvx512",
       &outside_simd_dispatch},
  };
  return kRules;
}

/// Blanks comments and string/char literal contents so the rule regexes never
/// match inside either. `in_block` carries /* ... */ state across lines.
std::string strip_code(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      out.push_back(' ');
      if (!in_block) out.push_back(' ');
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;  // rest is comment
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block = true;
      out.append("  ");
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out.append("  ");
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        out.push_back(' ');
        ++i;
      }
      if (i < line.size()) out.push_back(quote);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Returns the rule name if the raw line carries a well-formed allow marker;
/// sets `malformed` when the marker is present but lacks a reason.
std::string allow_marker(const std::string& raw, bool& malformed) {
  static const std::regex kAllow(R"(flash-lint:\s*allow\(([a-z-]+)\)\s*(:?)\s*(.*))");
  std::smatch m;
  if (!std::regex_search(raw, m, kAllow)) return {};
  const std::string reason = m[3].str();
  malformed = (m[2].str().empty() || reason.find_first_not_of(" \t") == std::string::npos);
  return m[1].str();
}

void lint_file(const fs::path& file, const fs::path& root, std::vector<Finding>& findings) {
  std::ifstream in(file);
  if (!in) {
    findings.push_back({file.string(), 0, "io", "cannot open file"});
    return;
  }
  const std::string rel = relative_path(file, root);

  std::vector<Rule> active;
  for (const Rule& r : rules()) {
    if (r.applies(rel)) active.push_back(r);
  }
  if (active.empty()) return;

  std::string line;
  std::string prev_allow;  // marker on the previous line covers this one
  bool in_block = false;
  for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
    bool malformed = false;
    const std::string here_allow = allow_marker(line, malformed);
    if (malformed) {
      findings.push_back({rel, lineno, "lint-marker",
                          "flash-lint: allow(" + here_allow + ") needs a ': reason'"});
    }
    const std::string code = strip_code(line, in_block);
    for (const Rule& r : active) {
      if (!std::regex_search(code, r.pattern)) continue;
      if ((here_allow == r.name || prev_allow == r.name) && !malformed) continue;
      findings.push_back({rel, lineno, r.name, r.message});
    }
    prev_allow = malformed ? std::string{} : here_allow;
  }
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Pulls every "file" entry out of compile_commands.json. The format is
/// machine-generated and flat, so a targeted scan beats a JSON dependency.
std::vector<fs::path> files_from_compdb(const fs::path& builddir) {
  std::vector<fs::path> out;
  std::ifstream in(builddir / "compile_commands.json");
  if (!in) return out;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  static const std::regex kFile(R"rx("file"\s*:\s*"([^"]+)")rx");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kFile);
       it != std::sregex_iterator(); ++it) {
    out.emplace_back((*it)[1].str());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path builddir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-p") {
      if (i + 1 >= argc) {
        std::cerr << "flash_lint: -p needs a build directory\n";
        return 2;
      }
      builddir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: flash_lint [-p <builddir>] [<repo-root>]\n";
      return 0;
    } else {
      root = arg;
    }
  }

  std::vector<fs::path> files;
  if (!builddir.empty()) {
    for (const fs::path& f : files_from_compdb(builddir)) {
      if (lintable(f) && relative_path(f, root).rfind("src/", 0) == 0) files.push_back(f);
    }
    if (files.empty()) {
      std::cerr << "flash_lint: no entries read from " << (builddir / "compile_commands.json")
                << "\n";
      return 2;
    }
  }
  // Headers never appear in the compilation database; walk src/ for them
  // (and for everything, in the no-builddir mode).
  const fs::path srcdir = root / "src";
  if (!fs::is_directory(srcdir)) {
    std::cerr << "flash_lint: " << srcdir << " is not a directory\n";
    return 2;
  }
  for (const auto& entry : fs::recursive_directory_iterator(srcdir)) {
    if (!entry.is_regular_file() || !lintable(entry.path())) continue;
    if (builddir.empty() || entry.path().extension() != ".cpp") files.push_back(entry.path());
  }

  std::vector<Finding> findings;
  for (const fs::path& f : files) lint_file(f, root, findings);

  for (const Finding& f : findings) {
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  if (findings.empty()) {
    std::cout << "flash_lint: " << files.size() << " files clean\n";
    return 0;
  }
  std::cerr << "flash_lint: " << findings.size() << " finding(s) in " << files.size()
            << " files\n";
  return 1;
}
