// flash_lint: project-specific domain lint for the FLASH tree.
//
// clang-tidy catches generic C++ bugs; these rules encode *project*
// invariants that no generic checker knows about. Files are tokenized
// (comments, string/char literals and raw strings removed, line numbers
// kept), the token rules run over the token stream, and three rules run a
// per-function dataflow pass on top of it:
//
//   raw-mod         Modulus-domain arithmetic outside src/hemath must go
//                   through mul_mod/add_mod/... — a raw `x % q` on a u64
//                   that already sits in [0, q) is either redundant or, far
//                   worse, a sign that a product was formed without the
//                   128-bit widening the hemath helpers guarantee. The same
//                   rule covers the Z_{2^k} idiom: a binary `x & mask` /
//                   `x &= some_mask` reduction outside src/hemath is a
//                   hand-rolled Pow2Ring — one missing AND in a wrap-exact
//                   chain stays invisible until the widths line up, so the
//                   masked form goes through Pow2Ring or carries an audited
//                   allow(raw-mod) reason.
//   raw-rng         std::mt19937_64 may only be constructed in
//                   src/hemath/sampler.* and src/testing/generators.*.
//                   Everyone else derives a stream with derive_stream_seed()
//                   (directly or via a documented wrapper) so that seeds
//                   printed in failure logs replay deterministically and
//                   parallel tasks never share a generator.
//   narrowing-fxp   In the fixed-point FFT path (src/fft/*fxp*), casts from
//                   the wide accumulator type to a narrower integer are only
//                   legal after saturation; anywhere else they silently drop
//                   overflow bits the interval analyzer proved could be set.
//   simd-dispatch   Dispatch sites outside src/hemath/simd* must query the
//                   SIMD level through level_at_least(), never
//                   active_simd_level() directly — `== kAvx2` equality
//                   checks silently turned AVX2 kernels off when kAvx512
//                   was added.
//   scratch-escape  Spans alloc()ed from a locally-declared
//                   core::ScratchFrame die with the frame (scratch.hpp
//                   ownership rules): returning such a span, or storing it
//                   into a member (`x_ = span` / `this->x = span`), escapes
//                   the frame lifetime and reads reclaimed arena memory.
//   lock-order      Lexical lock-order pass: every lock_guard/unique_lock/
//                   scoped_lock acquisition made while another is held adds
//                   a held -> acquired edge (mutexes identified by the leaf
//                   identifier of the locked expression; defer_lock and
//                   explicit .unlock() are understood). A cycle in the
//                   global graph is a deadlock candidate and every edge on
//                   the cycle is reported at its acquisition site.
//   stream-derive   A parallel_for/for_range lambda body that constructs a
//                   Sampler or mt19937 must derive its seed through
//                   derive_stream_seed()/substream()/fork() AND mix in a
//                   lambda parameter (the loop index) — otherwise every
//                   worker replays one stream, which is exactly the
//                   correlated-mask bug class the protocol seed schedule
//                   exists to prevent.
//
// Intentional boundary crossings are annotated in-source:
//
//     ... code ...  // flash-lint: allow(raw-mod): reason
//
// (same line or the immediately preceding line). The reason is mandatory —
// an allow() without one is itself reported. For lock-order the marker goes
// on the inner acquisition site: it removes that edge from the graph.
//
// Usage:  flash_lint [-p <builddir>] [--expect <rule>] [<repo-root>]
//
// With -p, the file list comes from <builddir>/compile_commands.json (plus
// all headers under src/); without it, the src/ tree is walked directly.
// --expect <rule> inverts the contract for fixture self-tests: exit 0 iff
// at least one finding was produced and every finding is of <rule>.
// Exit status: 0 = clean (or --expect satisfied), 1 = findings, 2 =
// usage/setup error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Tokenizer

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;
  std::size_t line;
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Tokenize C++ source: identifiers, numbers, and punctuation, with comments
/// and string/char literal *contents* dropped (raw strings included). Only
/// the multi-character operators the rules inspect are fused ("->", "::",
/// compound assignments so `%=` never reads as `%`); everything else is one
/// punctuation token per character.
std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> toks;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  const auto peek = [&](std::size_t k) { return i + k < n ? text[i + k] : '\0'; };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal R"delim( ... )delim" — find the matching closer.
    if (c == 'R' && peek(1) == '"' &&
        (toks.empty() || toks.back().text != "include")) {  // not a header name
      std::size_t d = i + 2;
      while (d < n && text[d] != '(') ++d;
      const std::string delim = text.substr(i + 2, d - (i + 2));
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = text.find(closer, d);
      const std::size_t stop = end == std::string::npos ? n : end + closer.size();
      for (std::size_t j = i; j < stop; ++j) {
        if (text[j] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\') ++i;
        if (i < n && text[i] == '\n') ++line;
        ++i;
      }
      ++i;  // closing quote
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      toks.push_back({Token::Kind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' || text[j] == '\'')) ++j;
      toks.push_back({Token::Kind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Fused operators the rules must not misread.
    static const char* kTwo[] = {"->", "::", "%=", "+=", "-=", "*=", "/=", "&=",
                                 "|=", "^=", "<<", ">>", "==", "!=", "<=", ">="};
    std::string two{c, peek(1)};
    bool fused = false;
    for (const char* op : kTwo) {
      if (two == op) {
        toks.push_back({Token::Kind::kPunct, two, line});
        i += 2;
        fused = true;
        break;
      }
    }
    if (fused) continue;
    toks.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Per-file context: tokens + allow markers.

struct FileCtx {
  std::string rel;
  std::vector<Token> toks;
  /// line -> rule name allowed by a well-formed marker on that line.
  std::map<std::size_t, std::string> allow;
  std::vector<Finding>* findings = nullptr;

  bool allowed(std::size_t line, const std::string& rule) const {
    for (const std::size_t l : {line, line - 1}) {
      const auto it = allow.find(l);
      if (it != allow.end() && it->second == rule) return true;
    }
    return false;
  }

  void report(std::size_t line, const std::string& rule, const std::string& message) const {
    if (allowed(line, rule)) return;
    findings->push_back({rel, line, rule, message});
  }
};

/// Returns the rule name if the raw line carries a well-formed allow marker;
/// sets `malformed` when the marker is present but lacks a reason.
std::string allow_marker(const std::string& raw, bool& malformed) {
  static const std::regex kAllow(R"(flash-lint:\s*allow\(([a-z-]+)\)\s*(:?)\s*(.*))");
  std::smatch m;
  if (!std::regex_search(raw, m, kAllow)) return {};
  const std::string reason = m[3].str();
  malformed = (m[2].str().empty() || reason.find_first_not_of(" \t") == std::string::npos);
  return m[1].str();
}

// ---------------------------------------------------------------------------
// Path predicates

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool in_src(const std::string& rel) { return starts_with(rel, "src/"); }

bool in_src_outside_hemath(const std::string& rel) {
  return in_src(rel) && !starts_with(rel, "src/hemath/");
}

bool rng_rule_applies(const std::string& rel) {
  if (!in_src(rel)) return false;
  if (starts_with(rel, "src/hemath/sampler")) return false;
  if (starts_with(rel, "src/testing/generators")) return false;
  return true;
}

bool fxp_fft_path(const std::string& rel) {
  return starts_with(rel, "src/fft/") && rel.find("fxp") != std::string::npos;
}

bool outside_simd_dispatch(const std::string& rel) {
  // The dispatch layer itself (simd.hpp/.cpp and the simd_batch SoA kernels)
  // legitimately reads the raw level; everyone else goes through
  // level_at_least().
  return in_src(rel) && !starts_with(rel, "src/hemath/simd");
}

bool stream_rule_applies(const std::string& rel) {
  // Sampler's own definition and the seeded test-corpus generators are the
  // two places that legitimately construct generators from raw seeds.
  return rng_rule_applies(rel);
}

// ---------------------------------------------------------------------------
// Token-pattern rules (the four legacy rules, ported off regexes).

const std::set<std::string>& modulus_names() {
  static const std::set<std::string> kNames = {"q", "modulus", "prime"};
  return kNames;
}

void rule_raw_mod(const FileCtx& f) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "%" || t[i].kind != Token::Kind::kPunct) continue;
    // Walk the operand: ident ((. | ->) ident)* — take the leaf.
    std::size_t j = i + 1;
    if (j >= t.size() || t[j].kind != Token::Kind::kIdent) continue;
    while (j + 2 < t.size() && (t[j + 1].text == "." || t[j + 1].text == "->") &&
           t[j + 2].kind == Token::Kind::kIdent) {
      j += 2;
    }
    if (modulus_names().count(t[j].text) == 0) continue;
    f.report(t[i].line, "raw-mod",
             "raw % on a modulus-domain value outside src/hemath; use the "
             "hemath mul_mod/add_mod/reduce helpers");
  }
  // Masked reduction: a binary `&`/`&=` whose right operand leaf is a mask
  // identifier (`mask` or `*_mask`) is a hand-rolled Z_{2^k} reduction — the
  // same bug surface the % form has (one missing AND in a wrap-exact chain
  // is invisible until the widths line up). Outside src/hemath it must go
  // through Pow2Ring, or carry an audited allow(raw-mod) reason. The
  // previous-token check keeps unary address-of (`&x`, `f(&mask)`) and
  // `Type& mask` references out: only an ident/number/)/] on the left makes
  // `&` a binary bitwise operator here.
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kPunct || (t[i].text != "&" && t[i].text != "&=")) continue;
    const Token& prev = t[i - 1];
    const bool binary = prev.kind == Token::Kind::kIdent || prev.kind == Token::Kind::kNumber ||
                        prev.text == ")" || prev.text == "]";
    if (!binary) continue;
    std::size_t j = i + 1;
    if (j >= t.size() || t[j].kind != Token::Kind::kIdent) continue;
    while (j + 2 < t.size() && (t[j + 1].text == "." || t[j + 1].text == "->") &&
           t[j + 2].kind == Token::Kind::kIdent) {
      j += 2;
    }
    const std::string& leaf = t[j].text;
    const bool is_mask = leaf == "mask" || (leaf.size() > 5 && leaf.compare(leaf.size() - 5, 5,
                                                                            "_mask") == 0);
    if (!is_mask) continue;
    f.report(t[i].line, "raw-mod",
             "hand-rolled mask reduction (& mask) outside src/hemath; use "
             "hemath Pow2Ring reduce/add/mul (or an audited allow(raw-mod))");
  }
}

void rule_raw_rng(const FileCtx& f) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "mt19937" && t[i].text != "mt19937_64") continue;
    // `mt19937_64 name(...)` / `mt19937_64 name{...}` / temporary
    // `mt19937_64(...)`. References, template arguments and plain
    // declarations without an initializer don't construct a generator.
    const Token& a = t[i + 1];
    const bool named = a.kind == Token::Kind::kIdent && i + 2 < t.size() &&
                       (t[i + 2].text == "(" || t[i + 2].text == "{");
    const bool temporary = a.text == "(" || a.text == "{";
    if (!named && !temporary) continue;
    f.report(t[i].line, "raw-rng",
             "std::mt19937_64 constructed outside hemath/sampler and "
             "testing/generators; derive the seed with derive_stream_seed()");
  }
}

const std::set<std::string>& narrow_int_names() {
  static const std::set<std::string> kNames = {"i8",      "i16",     "i32",     "i64",
                                               "int8_t",  "int16_t", "int32_t", "int64_t",
                                               "int",     "short"};
  return kNames;
}

void rule_narrowing_fxp(const FileCtx& f) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].text != "static_cast" || t[i + 1].text != "<") continue;
    // Collect the template argument up to the matching '>'.
    std::string leaf;
    int depth = 1;
    std::size_t j = i + 2;
    for (; j < t.size() && depth > 0; ++j) {
      if (t[j].text == "<") ++depth;
      if (t[j].text == ">") --depth;
      if (depth > 0 && t[j].kind == Token::Kind::kIdent) leaf = t[j].text;
    }
    if (narrow_int_names().count(leaf) == 0) continue;
    f.report(t[i].line, "narrowing-fxp",
             "narrowing integer cast in the FXP FFT path; only the saturation "
             "helper may drop accumulator bits");
  }
}

void rule_simd_dispatch(const FileCtx& f) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "active_simd_level" || t[i + 1].text != "(") continue;
    f.report(t[i].line, "simd-dispatch",
             "direct active_simd_level() call outside src/hemath/simd; dispatch "
             "through level_at_least() so AVX2 kernels stay eligible at kAvx512");
  }
}

// ---------------------------------------------------------------------------
// scratch-escape: spans from a locally-declared ScratchFrame must not
// outlive it.

void rule_scratch_escape(const FileCtx& f) {
  const auto& t = f.toks;
  // var -> brace depth of its declaration; popped when the scope closes so a
  // same-named local in another function never aliases a tracked span.
  std::map<std::string, int> frames;
  std::map<std::string, int> spans;
  int depth = 0;
  const auto pop_scope = [&](std::map<std::string, int>& vars) {
    for (auto it = vars.begin(); it != vars.end();) {
      it = it->second > depth ? vars.erase(it) : std::next(it);
    }
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "{") {
      ++depth;
      continue;
    }
    if (t[i].text == "}") {
      --depth;
      pop_scope(frames);
      pop_scope(spans);
      continue;
    }
    // Local frame declaration: `ScratchFrame name(...)`. A `ScratchFrame&`
    // parameter is the *caller's* frame — spans from it legitimately return
    // to the caller — so only the constructor form registers.
    if (t[i].text == "ScratchFrame" && i + 2 < t.size() &&
        t[i + 1].kind == Token::Kind::kIdent && t[i + 2].text == "(") {
      frames[t[i + 1].text] = depth;
      continue;
    }
    // `frame.alloc` — the span source.
    if (t[i].kind == Token::Kind::kIdent && frames.count(t[i].text) != 0 &&
        i + 2 < t.size() && t[i + 1].text == "." && t[i + 2].text == "alloc") {
      // `return frame.alloc<...>(...)` escapes directly.
      if (i >= 1 && t[i - 1].text == "return") {
        f.report(t[i].line, "scratch-escape",
                 "returning a span allocated from a local ScratchFrame; the storage is "
                 "reclaimed when the frame dies");
        continue;
      }
      // `x = frame.alloc...` / `auto x = frame.alloc...`: x becomes a span var.
      if (i >= 2 && t[i - 1].text == "=" && t[i - 2].kind == Token::Kind::kIdent) {
        const std::string& var = t[i - 2].text;
        // Member store: trailing-underscore name or this-> target.
        const bool member_name = var.size() > 1 && var.back() == '_';
        const bool this_target = i >= 4 && t[i - 3].text == "->" && t[i - 4].text == "this";
        if (member_name || this_target) {
          f.report(t[i].line, "scratch-escape",
                   "storing a ScratchFrame span into a member; the storage is reclaimed "
                   "when the frame dies");
        } else {
          spans[var] = depth;
        }
      }
      continue;
    }
    // Escapes of tracked span variables.
    if (t[i].kind == Token::Kind::kIdent && spans.count(t[i].text) != 0) {
      if (i >= 1 && t[i - 1].text == "return") {
        f.report(t[i].line, "scratch-escape",
                 "returning span '" + t[i].text + "' allocated from a local ScratchFrame");
        continue;
      }
      // `member_ = span` / `this->x = span`.
      if (i >= 2 && t[i - 1].text == "=" && t[i - 2].kind == Token::Kind::kIdent) {
        const std::string& target = t[i - 2].text;
        const bool member_name = target.size() > 1 && target.back() == '_';
        const bool this_target = i >= 4 && t[i - 3].text == "->" && t[i - 4].text == "this";
        if (member_name || this_target) {
          f.report(t[i].line, "scratch-escape",
                   "storing ScratchFrame span '" + t[i].text +
                       "' into a member; the storage is reclaimed when the frame dies");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// lock-order: global acquisition graph, cycles reported at their edges.

struct LockEdge {
  std::string file;
  std::size_t line;
};

/// held-leaf -> acquired-leaf -> one representative acquisition site.
using LockGraph = std::map<std::string, std::map<std::string, LockEdge>>;

const std::set<std::string>& guard_types() {
  static const std::set<std::string> kTypes = {"lock_guard", "unique_lock", "scoped_lock"};
  return kTypes;
}

/// Collect held->acquired edges from one file. Acquisitions are tracked with
/// the brace depth at which their guard lives; closing that scope (or an
/// explicit guard.unlock()) releases them. defer_lock guards acquire at the
/// later guard.lock() call.
void collect_lock_edges(const FileCtx& f, LockGraph& graph) {
  const auto& t = f.toks;
  struct Held {
    std::string leaf;
    std::string guard;
    int depth;
  };
  std::vector<Held> held;
  // defer_lock guards: guard var -> mutex leaf, armed by guard.lock().
  std::map<std::string, std::string> deferred;
  int depth = 0;

  const auto acquire = [&](const std::string& leaf, const std::string& guard,
                           std::size_t line) {
    if (!f.allowed(line, "lock-order")) {
      for (const Held& h : held) {
        graph[h.leaf].emplace(leaf, LockEdge{f.rel, line});
      }
    }
    held.push_back({leaf, guard, depth});
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "{") {
      ++depth;
      continue;
    }
    if (t[i].text == "}") {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }
    // guard.unlock() / guard.lock()
    if (t[i].kind == Token::Kind::kIdent && i + 3 < t.size() && t[i + 1].text == "." &&
        (t[i + 2].text == "unlock" || t[i + 2].text == "lock") && t[i + 3].text == "(") {
      const std::string& g = t[i].text;
      if (t[i + 2].text == "unlock") {
        for (std::size_t k = held.size(); k-- > 0;) {
          if (held[k].guard == g) {
            deferred[g] = held[k].leaf;  // re-lockable later
            held.erase(held.begin() + static_cast<std::ptrdiff_t>(k));
            break;
          }
        }
      } else {
        const auto it = deferred.find(g);
        if (it != deferred.end()) acquire(it->second, g, t[i].line);
      }
      i += 3;
      continue;
    }
    if (t[i].kind != Token::Kind::kIdent || guard_types().count(t[i].text) == 0) continue;
    // Skip the template argument list, if any.
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") {
      int tdepth = 1;
      for (++j; j < t.size() && tdepth > 0; ++j) {
        if (t[j].text == "<") ++tdepth;
        if (t[j].text == ">") --tdepth;
      }
    }
    // Declaration form only: `lock_guard<...> name(args)`. A reference
    // parameter (`unique_lock<...>& lock`) is a lock someone else holds.
    if (j >= t.size() || t[j].kind != Token::Kind::kIdent) continue;
    const std::string guard_var = t[j].text;
    if (j + 1 >= t.size() || t[j + 1].text != "(") continue;
    // Parse constructor args: comma-separated at paren depth 1.
    std::vector<std::string> arg_leafs;
    std::string leaf;
    bool defer = false;
    bool adopt = false;
    int pdepth = 1;
    std::size_t k = j + 2;
    for (; k < t.size() && pdepth > 0; ++k) {
      if (t[k].text == "(") ++pdepth;
      if (t[k].text == ")") {
        --pdepth;
        if (pdepth == 0) break;
      }
      if (t[k].text == "," && pdepth == 1) {
        if (!leaf.empty()) arg_leafs.push_back(leaf);
        leaf.clear();
        continue;
      }
      if (t[k].kind == Token::Kind::kIdent) {
        if (t[k].text == "defer_lock") defer = true;
        if (t[k].text == "adopt_lock") adopt = true;
        leaf = t[k].text;
      }
    }
    if (!leaf.empty()) arg_leafs.push_back(leaf);
    // Drop the tag arguments themselves.
    arg_leafs.erase(std::remove_if(arg_leafs.begin(), arg_leafs.end(),
                                   [](const std::string& a) {
                                     return a == "defer_lock" || a == "adopt_lock" ||
                                            a == "try_to_lock";
                                   }),
                    arg_leafs.end());
    if (arg_leafs.empty()) {
      i = k;
      continue;
    }
    if (defer) {
      deferred[guard_var] = arg_leafs.front();
      i = k;
      continue;
    }
    // scoped_lock(a, b, ...) acquires all-at-once (internally ordered):
    // edges flow from what is already held to each of them, never between
    // them. adopt_lock means "already locked" — same edge semantics.
    (void)adopt;
    for (const std::string& a : arg_leafs) acquire(a, guard_var, t[i].line);
    i = k;
  }
}

/// DFS cycle detection; returns every edge that participates in a cycle.
std::vector<std::pair<std::string, std::string>> cyclic_edges(const LockGraph& graph) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [from, tos] : graph) {
    for (const auto& [to, site] : tos) {
      // Edge from->to is on a cycle iff `from` is reachable from `to`.
      std::set<std::string> seen;
      std::vector<std::string> stack{to};
      bool cyc = false;
      while (!stack.empty() && !cyc) {
        const std::string node = stack.back();
        stack.pop_back();
        if (node == from) {
          cyc = true;
          break;
        }
        if (!seen.insert(node).second) continue;
        const auto it = graph.find(node);
        if (it == graph.end()) continue;
        for (const auto& [next, s] : it->second) stack.push_back(next);
      }
      if (cyc) out.emplace_back(from, to);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// stream-derive: Sampler/mt19937 built inside parallel bodies must derive a
// per-index stream.

const std::set<std::string>& derive_fn_names() {
  static const std::set<std::string> kNames = {"derive_stream_seed", "substream", "fork"};
  return kNames;
}

struct ParallelBody {
  std::size_t begin = 0, end = 0;      // token range of the lambda body
  std::set<std::string> params;        // lambda parameter names
};

/// Find the lambda bodies of parallel_for/for_range call sites (nesting
/// kept: innermost match wins for a given token).
std::vector<ParallelBody> parallel_bodies(const std::vector<Token>& t) {
  std::vector<ParallelBody> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "parallel_for" && t[i].text != "for_range") continue;
    if (t[i + 1].text != "(") continue;
    // Find the lambda introducer within the call's argument list.
    int pdepth = 1;
    std::size_t j = i + 2;
    while (j < t.size() && pdepth > 0 && t[j].text != "[") {
      if (t[j].text == "(") ++pdepth;
      if (t[j].text == ")") --pdepth;
      ++j;
    }
    if (j >= t.size() || t[j].text != "[") continue;
    // Capture list.
    while (j < t.size() && t[j].text != "]") ++j;
    ++j;
    ParallelBody body;
    // Parameter list (may be absent for a no-arg lambda).
    if (j < t.size() && t[j].text == "(") {
      int d = 1;
      std::string last;
      for (++j; j < t.size() && d > 0; ++j) {
        if (t[j].text == "(") ++d;
        if (t[j].text == ")") {
          --d;
          if (d == 0) break;
        }
        if (t[j].text == "," && d == 1) {
          if (!last.empty()) body.params.insert(last);
          last.clear();
          continue;
        }
        if (t[j].kind == Token::Kind::kIdent) last = t[j].text;
      }
      if (!last.empty()) body.params.insert(last);
      ++j;
    }
    while (j < t.size() && t[j].text != "{") ++j;
    if (j >= t.size()) continue;
    body.begin = j + 1;
    int bdepth = 1;
    for (++j; j < t.size() && bdepth > 0; ++j) {
      if (t[j].text == "{") ++bdepth;
      if (t[j].text == "}") --bdepth;
    }
    body.end = j;  // one past the closing brace
    out.push_back(std::move(body));
  }
  return out;
}

void rule_stream_derive(const FileCtx& f) {
  const auto& t = f.toks;
  const std::vector<ParallelBody> bodies = parallel_bodies(t);
  if (bodies.empty()) return;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "Sampler" && t[i].text != "mt19937" && t[i].text != "mt19937_64") continue;
    // Construction form (named or temporary), as in rule_raw_rng.
    std::size_t open;
    if (t[i + 1].kind == Token::Kind::kIdent && i + 2 < t.size() &&
        (t[i + 2].text == "(" || t[i + 2].text == "{")) {
      open = i + 2;
    } else if (t[i + 1].text == "(" || t[i + 1].text == "{") {
      open = i + 1;
    } else {
      continue;
    }
    // Innermost enclosing parallel body, if any.
    const ParallelBody* in = nullptr;
    for (const ParallelBody& b : bodies) {
      if (i >= b.begin && i < b.end && (in == nullptr || b.begin > in->begin)) in = &b;
    }
    if (in == nullptr) continue;
    // Constructor args must mention a derivation helper AND a lambda param.
    const std::string close = t[open].text == "(" ? ")" : "}";
    const std::string opener = t[open].text;
    int d = 1;
    bool derived = false, indexed = false;
    for (std::size_t k = open + 1; k < t.size() && d > 0; ++k) {
      if (t[k].text == opener) ++d;
      if (t[k].text == close) {
        --d;
        continue;
      }
      if (t[k].kind != Token::Kind::kIdent) continue;
      if (derive_fn_names().count(t[k].text) != 0) derived = true;
      if (in->params.count(t[k].text) != 0) indexed = true;
    }
    if (derived && indexed) continue;
    f.report(t[i].line, "stream-derive",
             derived ? "parallel-body generator seed does not involve the loop index; "
                       "every worker replays the same stream"
                     : "generator constructed in a parallel body without "
                       "derive_stream_seed()/substream(); derive a per-index stream");
  }
}

// ---------------------------------------------------------------------------
// Driver

std::string relative_path(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  std::string s = (ec ? file : rel).generic_string();
  while (s.rfind("./", 0) == 0) s.erase(0, 2);
  return s;
}

void lint_file(const fs::path& file, const fs::path& root, std::vector<Finding>& findings,
               LockGraph& lock_graph) {
  std::ifstream in(file);
  if (!in) {
    findings.push_back({file.string(), 0, "io", "cannot open file"});
    return;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  FileCtx f;
  f.rel = relative_path(file, root);
  f.findings = &findings;

  // Allow markers come from the raw lines (they live in comments, which the
  // tokenizer drops).
  {
    std::istringstream lines(text);
    std::string line;
    for (std::size_t lineno = 1; std::getline(lines, line); ++lineno) {
      bool malformed = false;
      const std::string rule = allow_marker(line, malformed);
      if (rule.empty()) continue;
      if (malformed) {
        findings.push_back({f.rel, lineno, "lint-marker",
                            "flash-lint: allow(" + rule + ") needs a ': reason'"});
        continue;
      }
      f.allow[lineno] = rule;
    }
  }

  f.toks = tokenize(text);

  if (in_src_outside_hemath(f.rel)) rule_raw_mod(f);
  if (rng_rule_applies(f.rel)) rule_raw_rng(f);
  if (fxp_fft_path(f.rel)) rule_narrowing_fxp(f);
  if (outside_simd_dispatch(f.rel)) rule_simd_dispatch(f);
  if (in_src(f.rel)) rule_scratch_escape(f);
  if (in_src(f.rel)) collect_lock_edges(f, lock_graph);
  if (stream_rule_applies(f.rel)) rule_stream_derive(f);
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Pulls every "file" entry out of compile_commands.json. The format is
/// machine-generated and flat, so a targeted scan beats a JSON dependency.
std::vector<fs::path> files_from_compdb(const fs::path& builddir) {
  std::vector<fs::path> out;
  std::ifstream in(builddir / "compile_commands.json");
  if (!in) return out;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  static const std::regex kFile(R"rx("file"\s*:\s*"([^"]+)")rx");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kFile);
       it != std::sregex_iterator(); ++it) {
    out.emplace_back((*it)[1].str());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path builddir;
  std::string expect;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-p") {
      if (i + 1 >= argc) {
        std::cerr << "flash_lint: -p needs a build directory\n";
        return 2;
      }
      builddir = argv[++i];
    } else if (arg == "--expect") {
      if (i + 1 >= argc) {
        std::cerr << "flash_lint: --expect needs a rule name\n";
        return 2;
      }
      expect = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: flash_lint [-p <builddir>] [--expect <rule>] [<repo-root>]\n";
      return 0;
    } else {
      root = arg;
    }
  }

  std::vector<fs::path> files;
  if (!builddir.empty()) {
    for (const fs::path& f : files_from_compdb(builddir)) {
      if (lintable(f) && relative_path(f, root).rfind("src/", 0) == 0) files.push_back(f);
    }
    if (files.empty()) {
      std::cerr << "flash_lint: no entries read from " << (builddir / "compile_commands.json")
                << "\n";
      return 2;
    }
  }
  // Headers never appear in the compilation database; walk src/ for them
  // (and for everything, in the no-builddir mode).
  const fs::path srcdir = root / "src";
  if (!fs::is_directory(srcdir)) {
    std::cerr << "flash_lint: " << srcdir << " is not a directory\n";
    return 2;
  }
  for (const auto& entry : fs::recursive_directory_iterator(srcdir)) {
    if (!entry.is_regular_file() || !lintable(entry.path())) continue;
    if (builddir.empty() || entry.path().extension() != ".cpp") files.push_back(entry.path());
  }

  std::vector<Finding> findings;
  LockGraph lock_graph;
  for (const fs::path& f : files) lint_file(f, root, findings, lock_graph);

  // Lock-order findings materialize once the whole graph is known.
  for (const auto& [from, to] : cyclic_edges(lock_graph)) {
    const LockEdge& site = lock_graph[from][to];
    findings.push_back({site.file, site.line, "lock-order",
                        "acquiring '" + to + "' while holding '" + from +
                            "' closes a cycle in the lock graph (deadlock candidate); fix "
                            "the order or annotate the intended hierarchy"});
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line) < std::tie(b.file, b.line);
  });
  for (const Finding& f : findings) {
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }

  if (!expect.empty()) {
    // Fixture self-test contract: the rule must fire, and nothing else may.
    if (findings.empty()) {
      std::cerr << "flash_lint: --expect " << expect << ": no findings produced\n";
      return 1;
    }
    for (const Finding& f : findings) {
      if (f.rule != expect) {
        std::cerr << "flash_lint: --expect " << expect << ": stray [" << f.rule << "] finding\n";
        return 1;
      }
    }
    std::cout << "flash_lint: " << findings.size() << " expected " << expect << " finding(s)\n";
    return 0;
  }

  if (findings.empty()) {
    std::cout << "flash_lint: " << files.size() << " files clean\n";
    return 0;
  }
  std::cerr << "flash_lint: " << findings.size() << " finding(s) in " << files.size()
            << " files\n";
  return 1;
}
