// flash_analyze: command-line front end for the static FXP overflow analyzer.
//
// Manual mode prints the per-stage interval report for one design point:
//
//   flash_analyze --n 512 --width 27 --k 5 --max-w 7
//
// (--n is the ring degree; the negacyclic weight transform of size n/2 is
// analyzed, which is the dataflow every shipped config runs.)
//
// --selfcheck runs the acceptance gauntlet the CI static-analysis job gates
// on: every shipped configuration (core defaults, the paper's Table-1
// points, a small fixed-seed DSE front) must be *proven* overflow-free, and
// the PR-2 bug variant (adder saturating before the requantizer) must be
// *flagged* with a concrete witness bound. Exit 0 iff all checks hold.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/fxp_analyzer.hpp"
#include "core/flash_accelerator.hpp"
#include "dse/bayesopt.hpp"
#include "dse/cost_model.hpp"
#include "dse/optimizer.hpp"
#include "dse/safety.hpp"

namespace {

const char* verdict_name(flash::analysis::StageVerdict v) {
  switch (v) {
    case flash::analysis::StageVerdict::kProvenSafe: return "proven-safe";
    case flash::analysis::StageVerdict::kSaturationPossible: return "SATURATION-POSSIBLE";
    case flash::analysis::StageVerdict::kWidthWasteful: return "width-wasteful";
  }
  return "?";
}

void print_report(const flash::analysis::AnalysisResult& res) {
  std::printf("m=%zu data_width=%d twiddle_k=%d\n", res.m, res.config.data_width,
              res.config.twiddle_k);
  std::printf("%-6s %-5s %-13s %-13s %-13s %-6s %s\n", "stage", "frac", "bound", "adder",
              "limit", "guard", "verdict");
  for (const auto& st : res.stages) {
    std::printf("%-6d %-5d %-13.6g %-13.6g %-13.6g %-6d %s\n", st.stage, st.frac_bits,
                st.mantissa_bound, st.adder_bound, st.sat_limit, st.guard_bits,
                verdict_name(st.verdict));
  }
  std::printf("output error bound: %.6g\n", res.output_error_bound);
  std::printf("overall: %s\n", res.overflow_free() ? "overflow-free (proven)"
                                                   : "NOT provable overflow-free");
}

int checks_failed = 0;

void expect(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++checks_failed;
}

/// Shipped configs are sized via DesignSpace::to_config for a folded |z|
/// bound; the matching coefficient bound is |z|/sqrt(2) (folding a+bi from
/// two coefficients grows magnitude by at most sqrt(2)).
constexpr double kSqrt2 = 1.4143;

flash::analysis::AnalysisResult analyze_shipped(std::size_t n, const flash::fft::FxpFftConfig& cfg,
                                                double coefficient_max_abs,
                                                bool pr2_variant = false) {
  flash::analysis::AnalyzerOptions opts;
  opts.input_max_abs = coefficient_max_abs;
  opts.clamp_adder_pre_requantize = pr2_variant;
  return flash::analysis::analyze_negacyclic(n, cfg, opts);
}

int selfcheck() {
  std::printf("core default / high-accuracy configs:\n");
  for (std::size_t n : {512u, 2048u}) {
    const std::uint64_t t = 65537;
    const double coeff_max = std::min<double>(static_cast<double>(t / 2), 64.0) / kSqrt2;
    const auto dflt = analyze_shipped(n, flash::core::default_approx_config(n, t), coeff_max);
    expect(dflt.overflow_free(), "default_approx_config n=" + std::to_string(n) + " proven");
    const auto high = analyze_shipped(n, flash::core::high_accuracy_approx_config(n, t), coeff_max);
    expect(high.overflow_free(), "high_accuracy_approx_config n=" + std::to_string(n) + " proven");
  }

  std::printf("paper Table-1 workload points:\n");
  for (auto [n, nnz, max_w] : {std::tuple<std::size_t, std::size_t, double>{512, 18, 7},
                               {1024, 36, 7},
                               {1024, 128, 3}}) {
    flash::dse::DesignSpace space(n / 2, flash::dse::SpaceBounds{10, 39, 2, 18});
    const auto model = flash::dse::ErrorModel::from_weight_stats(n, nnz, max_w);
    for (int width : {27, 39}) {
      flash::dse::DesignPoint p;
      p.stage_widths.assign(static_cast<std::size_t>(space.stages()), width);
      p.twiddle_k = width == 27 ? 5 : 18;
      const auto res = flash::dse::analyze_design_point(space, model, p);
      expect(res.overflow_free(), "n=" + std::to_string(n) + " max_w=" +
                                      std::to_string(static_cast<int>(max_w)) + " width=" +
                                      std::to_string(width) + " proven");

      // The PR-2 datapath (adder clamps at the input fraction scale, before
      // the requantizer's shift) must be flagged with a concrete witness.
      const auto cfg = space.to_config(p, model.input_max_abs());
      const auto bug = analyze_shipped(n, cfg, model.coefficient_max_abs(), /*pr2=*/true);
      const auto* sat = bug.first_saturation_possible();
      expect(sat != nullptr, "  PR-2 variant flagged");
      if (sat != nullptr) {
        const double witness = std::max(sat->mantissa_bound, sat->adder_bound);
        expect(witness > sat->sat_limit,
               "  PR-2 witness concrete: stage " + std::to_string(sat->stage) + " bound " +
                   std::to_string(witness) + " > limit " + std::to_string(sat->sat_limit));
      }
    }
  }

  std::printf("fixed-seed DSE fronts (every returned point must be provable):\n");
  {
    const std::size_t n = 512;
    flash::dse::DesignSpace space(n / 2, flash::dse::SpaceBounds{10, 39, 2, 18});
    const auto model = flash::dse::ErrorModel::from_weight_stats(n, 18, 7);
    const flash::dse::CostModel cost(space.fft_size(), space.bounds());

    flash::dse::DseExplorer evo(space, model, cost, /*seed=*/41);
    flash::dse::DseOptions evo_opts;
    evo_opts.evaluations = 120;
    evo_opts.population = 24;
    std::size_t unproven = 0;
    for (const auto& e : pareto_front(evo.explore(evo_opts))) {
      if (!flash::dse::design_point_proven_safe(space, model, e.point)) ++unproven;
    }
    expect(unproven == 0, "evolutionary front: 0 unprovable points");

    flash::dse::BayesianExplorer bayes(space, model, cost, /*seed=*/43);
    flash::dse::BayesOptions bayes_opts;
    bayes_opts.evaluations = 48;
    bayes_opts.initial_random = 12;
    bayes_opts.candidate_pool = 48;
    unproven = 0;
    for (const auto& e : pareto_front(bayes.explore(bayes_opts))) {
      if (!flash::dse::design_point_proven_safe(space, model, e.point)) ++unproven;
    }
    expect(unproven == 0, "bayesopt front: 0 unprovable points");
  }

  std::printf("negative control (a config the analyzer must reject):\n");
  {
    flash::analysis::AnalyzerOptions opts;
    opts.input_max_abs = 8.0;
    const auto cfg = flash::fft::FxpFftConfig::uniform(256, 12, 14, 8);
    const auto res = flash::analysis::analyze_fxp_fft(256, cfg, opts);
    expect(!res.overflow_free(), "14-bit dense FFT with |z|<=8 not provable");
  }

  std::printf(checks_failed == 0 ? "selfcheck: all checks passed\n"
                                 : "selfcheck: %d check(s) FAILED\n",
              checks_failed);
  return checks_failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 512;
  int width = 27, k = 5;
  double max_w = 7.0;
  bool run_selfcheck = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flash_analyze: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--selfcheck") {
      run_selfcheck = true;
    } else if (arg == "--n") {
      n = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--width") {
      width = std::atoi(next());
    } else if (arg == "--k") {
      k = std::atoi(next());
    } else if (arg == "--max-w") {
      max_w = std::atof(next());
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: flash_analyze [--selfcheck] [--n N] [--width W] [--k K] [--max-w M]\n");
      return 0;
    } else {
      std::fprintf(stderr, "flash_analyze: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  if (run_selfcheck) return selfcheck();

  flash::dse::DesignSpace space(n / 2, flash::dse::SpaceBounds{8, 62, 2, 20});
  const auto model = flash::dse::ErrorModel::from_weight_stats(n, n / 8, max_w);
  flash::dse::DesignPoint p;
  p.stage_widths.assign(static_cast<std::size_t>(space.stages()), width);
  p.twiddle_k = k;
  const auto res = flash::dse::analyze_design_point(space, model, p);
  print_report(res);
  return res.overflow_free() ? 0 : 1;
}
