// flash_analyze: command-line front end for the static FXP overflow analyzer.
//
// Manual mode prints the per-stage interval report for one design point:
//
//   flash_analyze --n 512 --width 27 --k 5 --max-w 7
//
// (--n is the ring degree; the negacyclic weight transform of size n/2 is
// analyzed, which is the dataflow every shipped config runs.)
//
// --selfcheck runs the acceptance gauntlet the CI static-analysis job gates
// on: every shipped configuration (core defaults, the paper's Table-1
// points, a small fixed-seed DSE front) must be *proven* overflow-free, and
// the PR-2 bug variant (adder saturating before the requantizer) must be
// *flagged* with a concrete witness bound. Exit 0 iff all checks hold.
//
// --pipeline runs the end-to-end decryption-correctness certifier
// (protocol/plan_certificate.hpp) over the committed serving workloads —
// the exact bench_serve and bench_network_serve plans (same seeds), a
// Table-1-scale point, and a deliberately under-budgeted control that must
// come back failure-possible-with-witness. `--json PATH` writes the
// machine-readable certificate document; `--check BASELINE` diffs it
// against the committed CERT_baseline.json the way perf-smoke diffs bench
// JSON (exact verdict match, bits within a small tolerance). Exit 0 iff
// every workload reaches its intended verdict and the baseline (if given)
// agrees.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/fxp_analyzer.hpp"
#include "core/flash_accelerator.hpp"
#include "dse/bayesopt.hpp"
#include "dse/cost_model.hpp"
#include "dse/optimizer.hpp"
#include "dse/safety.hpp"
#include "protocol/plan_certificate.hpp"
#include "tensor/network.hpp"
#include "tensor/quant.hpp"

namespace {

const char* verdict_name(flash::analysis::StageVerdict v) {
  switch (v) {
    case flash::analysis::StageVerdict::kProvenSafe: return "proven-safe";
    case flash::analysis::StageVerdict::kSaturationPossible: return "SATURATION-POSSIBLE";
    case flash::analysis::StageVerdict::kWidthWasteful: return "width-wasteful";
  }
  return "?";
}

void print_report(const flash::analysis::AnalysisResult& res) {
  std::printf("m=%zu data_width=%d twiddle_k=%d\n", res.m, res.config.data_width,
              res.config.twiddle_k);
  std::printf("%-6s %-5s %-13s %-13s %-13s %-6s %s\n", "stage", "frac", "bound", "adder",
              "limit", "guard", "verdict");
  for (const auto& st : res.stages) {
    std::printf("%-6d %-5d %-13.6g %-13.6g %-13.6g %-6d %s\n", st.stage, st.frac_bits,
                st.mantissa_bound, st.adder_bound, st.sat_limit, st.guard_bits,
                verdict_name(st.verdict));
  }
  std::printf("output error bound: %.6g\n", res.output_error_bound);
  std::printf("overall: %s\n", res.overflow_free() ? "overflow-free (proven)"
                                                   : "NOT provable overflow-free");
}

int checks_failed = 0;

void expect(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++checks_failed;
}

/// Shipped configs are sized via DesignSpace::to_config for a folded |z|
/// bound; the matching coefficient bound is |z|/sqrt(2) (folding a+bi from
/// two coefficients grows magnitude by at most sqrt(2)).
constexpr double kSqrt2 = 1.4143;

flash::analysis::AnalysisResult analyze_shipped(std::size_t n, const flash::fft::FxpFftConfig& cfg,
                                                double coefficient_max_abs,
                                                bool pr2_variant = false) {
  flash::analysis::AnalyzerOptions opts;
  opts.input_max_abs = coefficient_max_abs;
  opts.clamp_adder_pre_requantize = pr2_variant;
  return flash::analysis::analyze_negacyclic(n, cfg, opts);
}

int selfcheck() {
  std::printf("core default / high-accuracy configs:\n");
  for (std::size_t n : {512u, 2048u}) {
    const std::uint64_t t = 65537;
    const double coeff_max = std::min<double>(static_cast<double>(t / 2), 64.0) / kSqrt2;
    const auto dflt = analyze_shipped(n, flash::core::default_approx_config(n, t), coeff_max);
    expect(dflt.overflow_free(), "default_approx_config n=" + std::to_string(n) + " proven");
    const auto high = analyze_shipped(n, flash::core::high_accuracy_approx_config(n, t), coeff_max);
    expect(high.overflow_free(), "high_accuracy_approx_config n=" + std::to_string(n) + " proven");
  }

  std::printf("paper Table-1 workload points:\n");
  for (auto [n, nnz, max_w] : {std::tuple<std::size_t, std::size_t, double>{512, 18, 7},
                               {1024, 36, 7},
                               {1024, 128, 3}}) {
    flash::dse::DesignSpace space(n / 2, flash::dse::SpaceBounds{10, 39, 2, 18});
    const auto model = flash::dse::ErrorModel::from_weight_stats(n, nnz, max_w);
    for (int width : {27, 39}) {
      flash::dse::DesignPoint p;
      p.stage_widths.assign(static_cast<std::size_t>(space.stages()), width);
      p.twiddle_k = width == 27 ? 5 : 18;
      const auto res = flash::dse::analyze_design_point(space, model, p);
      expect(res.overflow_free(), "n=" + std::to_string(n) + " max_w=" +
                                      std::to_string(static_cast<int>(max_w)) + " width=" +
                                      std::to_string(width) + " proven");

      // The PR-2 datapath (adder clamps at the input fraction scale, before
      // the requantizer's shift) must be flagged with a concrete witness.
      const auto cfg = space.to_config(p, model.input_max_abs());
      const auto bug = analyze_shipped(n, cfg, model.coefficient_max_abs(), /*pr2=*/true);
      const auto* sat = bug.first_saturation_possible();
      expect(sat != nullptr, "  PR-2 variant flagged");
      if (sat != nullptr) {
        const double witness = std::max(sat->mantissa_bound, sat->adder_bound);
        expect(witness > sat->sat_limit,
               "  PR-2 witness concrete: stage " + std::to_string(sat->stage) + " bound " +
                   std::to_string(witness) + " > limit " + std::to_string(sat->sat_limit));
      }
    }
  }

  std::printf("fixed-seed DSE fronts (every returned point must be provable):\n");
  {
    const std::size_t n = 512;
    flash::dse::DesignSpace space(n / 2, flash::dse::SpaceBounds{10, 39, 2, 18});
    const auto model = flash::dse::ErrorModel::from_weight_stats(n, 18, 7);
    const flash::dse::CostModel cost(space.fft_size(), space.bounds());

    flash::dse::DseExplorer evo(space, model, cost, /*seed=*/41);
    flash::dse::DseOptions evo_opts;
    evo_opts.evaluations = 120;
    evo_opts.population = 24;
    std::size_t unproven = 0;
    for (const auto& e : pareto_front(evo.explore(evo_opts))) {
      if (!flash::dse::design_point_proven_safe(space, model, e.point)) ++unproven;
    }
    expect(unproven == 0, "evolutionary front: 0 unprovable points");

    flash::dse::BayesianExplorer bayes(space, model, cost, /*seed=*/43);
    flash::dse::BayesOptions bayes_opts;
    bayes_opts.evaluations = 48;
    bayes_opts.initial_random = 12;
    bayes_opts.candidate_pool = 48;
    unproven = 0;
    for (const auto& e : pareto_front(bayes.explore(bayes_opts))) {
      if (!flash::dse::design_point_proven_safe(space, model, e.point)) ++unproven;
    }
    expect(unproven == 0, "bayesopt front: 0 unprovable points");
  }

  std::printf("negative control (a config the analyzer must reject):\n");
  {
    flash::analysis::AnalyzerOptions opts;
    opts.input_max_abs = 8.0;
    const auto cfg = flash::fft::FxpFftConfig::uniform(256, 12, 14, 8);
    const auto res = flash::analysis::analyze_fxp_fft(256, cfg, opts);
    expect(!res.overflow_free(), "14-bit dense FFT with |z|<=8 not provable");
  }

  std::printf(checks_failed == 0 ? "selfcheck: all checks passed\n"
                                 : "selfcheck: %d check(s) FAILED\n",
              checks_failed);
  return checks_failed == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --pipeline: end-to-end decryption-correctness certificates.

struct NamedCert {
  std::string name;
  bool expect_proven;  // intended verdict (underbudget controls expect failure)
  flash::protocol::PlanCertificate cert;
};

flash::tensor::Tensor4 uniform_weights(std::size_t m, std::size_t c, std::size_t k,
                                       flash::tensor::i64 max_w, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  flash::tensor::Tensor4 w(m, c, k, k);
  std::uniform_int_distribution<flash::tensor::i64> dist(-max_w, max_w);
  for (auto& v : w.data()) v = dist(rng);
  return w;
}

/// The committed workload set. Everything is seeded, so the certificates are
/// deterministic and diffable; the bench entries replicate bench_serve.cpp /
/// bench_network_serve.cpp exactly (same params, seeds and weight draws).
std::vector<NamedCert> pipeline_certificates() {
  using flash::bfv::PolyMulBackend;
  using flash::protocol::certify_conv;
  std::vector<NamedCert> out;

  {
    const auto p = flash::bfv::BfvParams::create(4096, 20, 49);
    const auto cfg = flash::core::high_accuracy_approx_config(p.n, p.t);
    std::mt19937_64 rng(7);
    const auto weights = flash::tensor::random_weights(32, 16, 3, 4, rng);
    out.push_back({"bench_serve/approx_high", true,
                   certify_conv(p, PolyMulBackend::kApproxFft, cfg, 16, 12, 12, weights, 1, 1)});
    out.push_back({"bench_serve/fft", true,
                   certify_conv(p, PolyMulBackend::kFft, std::nullopt, 16, 12, 12, weights, 1, 1)});
    out.push_back({"bench_serve/ntt", true,
                   certify_conv(p, PolyMulBackend::kNtt, std::nullopt, 16, 12, 12, weights, 1, 1)});
  }

  {
    const auto p = flash::bfv::BfvParams::create(2048, 17, 44);
    const auto cfg = flash::core::high_accuracy_approx_config(p.n, p.t);
    std::mt19937_64 rng(11);
    const auto stack = flash::tensor::LayerStack::resnet18_like(3, 4, 8, 4, 4, 4, rng);
    flash::tensor::Shape3 shape{3, 8, 8};
    std::size_t li = 0;
    for (const auto& l : stack.layers) {
      if (l.kind == flash::tensor::NetLayer::Kind::kConv) {
        char name[48];
        std::snprintf(name, sizeof name, "bench_network/layer%02zu", li);
        out.push_back({name, true,
                       certify_conv(p, PolyMulBackend::kApproxFft, cfg, shape.c, shape.h, shape.w,
                                    l.weights, l.stride, l.pad)});
      }
      shape = flash::tensor::LayerStack::layer_output_shape(shape, l);
      ++li;
    }
  }

  // Table-1-scale point at n=512: q sized so the proof closes (at test-scale
  // rings the share-wrap floor eats most of a small modulus).
  {
    const auto p = flash::bfv::BfvParams::create(512, 12, 34);
    const auto weights = uniform_weights(4, 2, 3, 3, /*seed=*/9);
    out.push_back({"table1/n512_ntt", true,
                   certify_conv(p, PolyMulBackend::kNtt, std::nullopt, 2, 6, 6, weights, 1, 1)});
    out.push_back({"table1/n512_approx_high", true,
                   certify_conv(p, PolyMulBackend::kApproxFft,
                                flash::core::high_accuracy_approx_config(p.n, p.t), 2, 6, 6,
                                weights, 1, 1)});
    // The width-27 default config is saturation-free (selfcheck) but its
    // spectrum error alone crosses this ceiling: overflow-freedom is not
    // decryption-correctness, which is the whole point of the pipeline pass.
    out.push_back({"negative/n512_default_w27", false,
                   certify_conv(p, PolyMulBackend::kApproxFft,
                                flash::core::default_approx_config(p.n, p.t), 2, 6, 6, weights, 1,
                                1)});
  }

  // Under-budgeted control: logq=30 leaves an 11-bit ceiling that the wrap
  // noise of this workload provably crosses — the certifier must return
  // failure-possible-with-witness (the witness replay is executed in
  // tests/test_pipeline_certifier.cpp and does corrupt decryption).
  {
    const auto p = flash::bfv::BfvParams::create(2048, 17, 30);
    const auto weights = uniform_weights(8, 8, 3, 7, /*seed=*/7);
    out.push_back({"underbudget/n2048_logq30_ntt", false,
                   certify_conv(p, PolyMulBackend::kNtt, std::nullopt, 8, 10, 10, weights, 1, 1)});
  }

  return out;
}

std::string render_certificates_json(const std::vector<NamedCert>& certs) {
  std::string doc = "{\n  \"schema\": \"flash-cert-v1\",\n  \"certificates\": [\n";
  for (std::size_t i = 0; i < certs.size(); ++i) {
    doc += flash::protocol::certificate_json(certs[i].name, certs[i].cert);
    doc += i + 1 < certs.size() ? ",\n" : "\n";
  }
  doc += "  ]\n}\n";
  return doc;
}

/// Baseline diff: every current entry must exist in the baseline with the
/// same verdict and bits within tolerance; the baseline must not contain
/// entries the current run lost. Bits tolerance absorbs libm ulp drift
/// across compilers — a model change shifts them by far more.
constexpr double kCheckBitsTolerance = 0.1;

int check_against_baseline(const std::vector<NamedCert>& certs, const std::string& baseline) {
  int failures = 0;
  for (const NamedCert& c : certs) {
    const std::string tag = "\"name\": \"" + c.name + "\"";
    const std::size_t at = baseline.find(tag);
    if (at == std::string::npos) {
      std::printf("  [FAIL] %s: missing from baseline\n", c.name.c_str());
      ++failures;
      continue;
    }
    const std::size_t end = baseline.find('\n', at);
    const std::string line = baseline.substr(at, end - at);

    const auto field = [&](const char* key) -> std::string {
      const std::string needle = std::string("\"") + key + "\": ";
      const std::size_t pos = line.find(needle);
      if (pos == std::string::npos) return {};
      return line.substr(pos + needle.size());
    };
    const std::string verdict = field("verdict");
    const std::string want = std::string("\"") + flash::analysis::to_string(c.cert.overall.verdict);
    if (verdict.compare(0, want.size() + 1, want + "\"") != 0) {
      std::printf("  [FAIL] %s: verdict %s, baseline has %.40s\n", c.name.c_str(),
                  flash::analysis::to_string(c.cert.overall.verdict), verdict.c_str());
      ++failures;
      continue;
    }
    const std::pair<const char*, double> bits[] = {
        {"certified_bits", c.cert.overall.certified_noise_bits},
        {"margin_bits", c.cert.overall.margin_bits},
        {"witness_bits", c.cert.overall.witness_noise_bits},
    };
    bool drifted = false;
    for (const auto& [key, now] : bits) {
      const std::string s = field(key);
      const double base = s.empty() ? std::nan("") : std::strtod(s.c_str(), nullptr);
      if (!(std::fabs(base - now) <= kCheckBitsTolerance)) {
        std::printf("  [FAIL] %s: %s %.2f vs baseline %.2f\n", c.name.c_str(), key, now, base);
        drifted = true;
      }
    }
    if (drifted) ++failures;
  }
  // Count baseline entries to catch silently dropped workloads.
  std::size_t baseline_entries = 0;
  for (std::size_t at = baseline.find("\"name\":"); at != std::string::npos;
       at = baseline.find("\"name\":", at + 1)) {
    ++baseline_entries;
  }
  if (baseline_entries != certs.size()) {
    std::printf("  [FAIL] baseline has %zu entries, current run has %zu\n", baseline_entries,
                certs.size());
    ++failures;
  }
  return failures;
}

int run_pipeline(const char* json_path, const char* check_path) {
  const std::vector<NamedCert> certs = pipeline_certificates();

  int failures = 0;
  std::printf("pipeline certificates:\n");
  for (const NamedCert& c : certs) {
    const bool proven = c.cert.proven();
    const bool ok = c.expect_proven
                        ? proven
                        : c.cert.overall.verdict ==
                              flash::analysis::PipelineVerdict::kFailurePossibleWithWitness;
    if (!ok) ++failures;
    std::printf("  [%s] %-30s units=%zu  %s\n", ok ? "ok" : "FAIL", c.name.c_str(),
                c.cert.units.size(), c.cert.overall.detail.c_str());
  }

  const std::string doc = render_certificates_json(certs);
  if (json_path != nullptr) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "flash_analyze: cannot write %s\n", json_path);
      return 2;
    }
    out << doc;
    std::printf("wrote %s\n", json_path);
  }

  if (check_path != nullptr) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "flash_analyze: cannot read baseline %s\n", check_path);
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::printf("checking against %s:\n", check_path);
    failures += check_against_baseline(certs, buf.str());
  }

  std::printf(failures == 0 ? "pipeline: all certificates at intended verdicts\n"
                            : "pipeline: %d certificate check(s) FAILED\n",
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 512;
  int width = 27, k = 5;
  double max_w = 7.0;
  bool run_selfcheck = false;
  bool run_pipeline_mode = false;
  const char* json_path = nullptr;
  const char* check_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flash_analyze: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--selfcheck") {
      run_selfcheck = true;
    } else if (arg == "--pipeline") {
      run_pipeline_mode = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--n") {
      n = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--width") {
      width = std::atoi(next());
    } else if (arg == "--k") {
      k = std::atoi(next());
    } else if (arg == "--max-w") {
      max_w = std::atof(next());
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: flash_analyze [--selfcheck] [--pipeline [--json OUT] [--check BASELINE]]\n"
          "                     [--n N] [--width W] [--k K] [--max-w M]\n");
      return 0;
    } else {
      std::fprintf(stderr, "flash_analyze: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  if (run_selfcheck) return selfcheck();
  if (run_pipeline_mode) return run_pipeline(json_path, check_path);

  flash::dse::DesignSpace space(n / 2, flash::dse::SpaceBounds{8, 62, 2, 20});
  const auto model = flash::dse::ErrorModel::from_weight_stats(n, n / 8, max_w);
  flash::dse::DesignPoint p;
  p.stage_widths.assign(static_cast<std::size_t>(space.stages()), width);
  p.twiddle_k = k;
  const auto res = flash::dse::analyze_design_point(space, model, p);
  print_report(res);
  return res.overflow_free() ? 0 : 1;
}
