// Private inference over a quantized residual block (paper Fig. 5(a)):
// two 3x3 convolutions run as hybrid HE/2PC HConvs on the FLASH datapath,
// with requantization, ReLU and the residual connection evaluated in the
// (simulated) 2PC layer. The result is compared against the cleartext block.
//
//   $ ./examples/private_resnet_block
#include <cstdio>
#include <random>

#include "core/flash_accelerator.hpp"
#include "tensor/quant.hpp"
#include "tensor/resnet.hpp"

namespace {

flash::tensor::Tensor3 pad1(const flash::tensor::Tensor3& x) {
  flash::tensor::Tensor3 out(x.channels(), x.height() + 2, x.width() + 2);
  for (std::size_t c = 0; c < x.channels(); ++c) {
    for (std::size_t y = 0; y < x.height(); ++y) {
      for (std::size_t xx = 0; xx < x.width(); ++xx) out.at(c, y + 1, xx + 1) = x.at(c, y, xx);
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace flash;

  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  core::FlashOptions options;
  options.backend = bfv::PolyMulBackend::kApproxFft;
  options.approx_config = core::high_accuracy_approx_config(params.n, params.t);
  core::FlashAccelerator flash_acc(params, options);

  std::mt19937_64 rng(7);
  const std::size_t channels = 8;
  const tensor::QuantizedBlock block = tensor::QuantizedBlock::random(channels, 3, 4, 4, rng);
  const tensor::Tensor3 x = tensor::random_activations(channels, 6, 6, 4, rng);

  // --- Private path: each conv is one HConv; requant/ReLU/residual are the
  // 2PC part of the protocol (evaluated here in the clear on shares'
  // reconstruction, as the paper's latency model also does).
  auto hconv_same = [&](const tensor::Tensor3& in, const tensor::Tensor4& w) {
    const protocol::HConvResult r = flash_acc.run_hconv(pad1(in), w);
    return r.reconstruct(params.t);
  };

  tensor::Tensor3 sp1 = hconv_same(x, block.conv1);
  tensor::requantize(sp1.data(), block.requant_shift, block.act_bits);
  tensor::Tensor3 a1 = tensor::relu(std::move(sp1));

  tensor::Tensor3 sp2 = hconv_same(a1, block.conv2);
  tensor::requantize(sp2.data(), block.requant_shift, block.act_bits);
  tensor::Tensor3 out = tensor::add(sp2, x);
  for (auto& v : out.data()) v = tensor::clamp_to_bits(v, block.act_bits);
  out = tensor::relu(std::move(out));

  // --- Cleartext reference.
  const tensor::Tensor3 ref = block.forward(x);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    if (out.data()[i] != ref.data()[i]) ++mismatches;
  }
  std::printf("private residual block: %zu channels 6x6, %zu mismatches vs cleartext\n", channels,
              mismatches);

  // --- What would this cost on the accelerator? Plan the two conv layers.
  tensor::LayerConfig layer;
  layer.name = "block.conv";
  layer.in_c = channels;
  layer.in_h = layer.in_w = 6;
  layer.out_c = channels;
  layer.kernel = 3;
  layer.stride = 1;
  layer.pad = 1;
  const core::LayerPlan plan = flash_acc.plan_layer(layer);
  std::printf("per conv: %llu weight transforms, sparse fraction %.3f, FLASH %.2f us vs CHAM %.2f us\n",
              static_cast<unsigned long long>(plan.tiling.weight_transforms),
              plan.weight_mult_fraction, plan.flash.seconds * 1e6, plan.cham.seconds * 1e6);
  return mismatches == 0 ? 0 : 1;
}
