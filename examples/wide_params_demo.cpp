// Cheetah-scale parameters: the hybrid protocol's homomorphic subset over a
// multi-limb (RNS) ciphertext modulus Q > 2^64, stored and processed
// limb-wise exactly as the accelerator cost models assume. Each limb's NTT
// is the transform FLASH's approximate FFT path replaces.
//
//   $ ./examples/wide_params_demo
#include <cmath>
#include <cstdio>
#include <random>

#include "bfv/wide.hpp"
#include "hemath/ntt.hpp"

int main() {
  using namespace flash;
  using namespace flash::bfv;

  // Q ~ 2^90 across two 45-bit NTT limbs, t = 2^20 — the regime of Cheetah's
  // production parameters (theirs: Q ~ 2^109).
  const WideBfvParams params = WideBfvParams::create(4096, 20, {45, 45});
  double q_bits = 0;
  for (hemath::u64 m : params.moduli) q_bits += std::log2(static_cast<double>(m));
  std::printf("wide BFV: N=%zu, t=2^20, Q ~ 2^%.1f over %zu limbs", params.n, q_bits,
              params.moduli.size());
  for (hemath::u64 m : params.moduli) std::printf("  [%llu]", static_cast<unsigned long long>(m));
  std::printf("\nnoise ceiling: %.1f bits (vs ~27 at single-word q)\n\n",
              params.noise_ceiling_bits());

  WideBfv he(params, 909);

  // Protocol round: share, encrypt, fold server share, multiply by sparse
  // 4-bit weights, check budget and correctness.
  std::mt19937_64 rng(1);
  std::vector<hemath::i64> x(params.n), x_client(params.n), x_server(params.n);
  for (std::size_t i = 0; i < params.n; ++i) {
    x[i] = static_cast<hemath::i64>(rng() % 16);
    const hemath::u64 share = rng() % params.t;
    x_client[i] = hemath::to_signed(share, params.t);
    x_server[i] = hemath::to_signed(
        hemath::sub_mod(hemath::from_signed(x[i], params.t), share, params.t), params.t);
  }
  std::vector<hemath::i64> w(params.n, 0);
  for (int i = 0; i < 9 * 16; ++i) w[rng() % params.n] = static_cast<hemath::i64>(rng() % 15) - 7;

  WideCiphertext ct = he.encrypt(x_client);
  std::printf("fresh budget:          %.1f bits\n", he.invariant_noise_budget(ct));
  he.add_plain_inplace(ct, x_server);
  std::printf("after share fold (⊞):  %.1f bits\n", he.invariant_noise_budget(ct));
  const WideCiphertext prod = he.multiply_plain(ct, w);
  std::printf("after weight mult (⊠): %.1f bits\n", he.invariant_noise_budget(prod));

  const auto got = he.decrypt(prod);
  const auto expect = hemath::negacyclic_multiply_schoolbook(
      params.t,
      [&] {
        std::vector<hemath::u64> v(params.n);
        for (std::size_t i = 0; i < params.n; ++i) v[i] = hemath::from_signed(x[i], params.t);
        return v;
      }(),
      [&] {
        std::vector<hemath::u64> v(params.n);
        for (std::size_t i = 0; i < params.n; ++i) v[i] = hemath::from_signed(w[i], params.t);
        return v;
      }());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < params.n; ++i) {
    if (hemath::from_signed(got[i], params.t) != expect[i]) ++mismatches;
  }
  std::printf("\nhomomorphic conv sum-products: %zu mismatches of %zu coefficients\n", mismatches,
              params.n);
  std::printf("with %zu limbs, every transform in Fig. 4 runs %zux — the limb-parallel\n",
              params.moduli.size(), params.moduli.size());
  std::printf("workload the accelerator baselines (F1/ARK) are built around.\n");
  return mismatches == 0 ? 0 : 1;
}
