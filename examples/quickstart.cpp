// Quickstart: encrypt an activation tensor, run one homomorphic convolution
// on the FLASH datapath (approximate + sparse FFT), and check the result
// against the cleartext convolution.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <random>

#include "core/flash_accelerator.hpp"
#include "tensor/quant.hpp"

int main() {
  using namespace flash;

  // 1. BFV parameters: ring degree 1024, 18-bit plaintext modulus (the
  //    sharing modulus of the 2PC layer), 46-bit NTT-prime ciphertext
  //    modulus. These fit a small conv comfortably inside the noise budget.
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  std::printf("BFV: N=%zu  t=2^18  q=%llu (%.0f-bit NTT prime)\n", params.n,
              static_cast<unsigned long long>(params.q), std::log2(static_cast<double>(params.q)));

  // 2. A FLASH accelerator instance. The default backend transforms weight
  //    plaintexts on the approximate fixed-point FFT datapath; we pick the
  //    high-accuracy configuration so the decrypted result is bit-exact.
  core::FlashOptions options;
  options.backend = bfv::PolyMulBackend::kApproxFft;
  options.approx_config = core::high_accuracy_approx_config(params.n, params.t);
  core::FlashAccelerator flash(params, options);

  // 3. A quantized convolution: 6 input channels of 9x9 (W4A4-style values),
  //    4 output channels, 3x3 kernel.
  std::mt19937_64 rng(42);
  const tensor::Tensor3 x = tensor::random_activations(6, 9, 9, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(4, 6, 3, 4, rng);

  // 4. Run the one-round hybrid HE/2PC protocol: the activation is secret
  //    shared, the client's share encrypted, the server folds in its share,
  //    multiplies by the encoded weights, masks, and both parties end with
  //    additive shares of the convolution.
  const protocol::HConvResult result = flash.run_hconv(x, w);
  const tensor::Tensor3 y = result.reconstruct(params.t);
  const tensor::Tensor3 expect = tensor::conv2d(x, w, {1, 0});

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < y.data().size(); ++i) {
    if (y.data()[i] != expect.data()[i]) ++mismatches;
  }
  std::printf("HConv: %zu x %zux%zu outputs, %zu mismatches vs cleartext conv\n",
              y.channels(), y.height(), y.width(), mismatches);
  std::printf("communication: %llu B up, %llu B down\n",
              static_cast<unsigned long long>(result.profile.bytes_client_to_server),
              static_cast<unsigned long long>(result.profile.bytes_server_to_client));
  std::printf("server ops: %llu weight transforms, %llu ct transforms, %llu inverse\n",
              static_cast<unsigned long long>(result.ops.plain_transforms),
              static_cast<unsigned long long>(result.ops.cipher_transforms),
              static_cast<unsigned long long>(result.ops.inverse_transforms));
  return mismatches == 0 ? 0 : 1;
}
