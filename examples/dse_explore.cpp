// Design-space exploration for the approximate FFT (paper Section IV-C2 and
// Fig. 11(b)(c)): explore per-stage bit-widths and the twiddle quantization
// level k for one ResNet-50 layer, print the Pareto front, and validate the
// analytical error model against the bit-accurate simulator at the chosen
// operating point.
//
//   $ ./examples/dse_explore [evaluations]
#include <cstdio>
#include <cstdlib>

#include "core/flash_accelerator.hpp"
#include "tensor/resnet.hpp"

int main(int argc, char** argv) {
  using namespace flash;

  const std::size_t evaluations = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  core::FlashAccelerator flash_acc(params);

  // Layer 28 of ResNet-50 (a mid-network 3x3 bottleneck conv).
  const auto layers = tensor::resnet50_conv_layers();
  const tensor::LayerConfig& layer = layers[28];
  std::printf("exploring layer %s (%zux%zux%zu -> %zu, k=%zu), %zu evaluations\n",
              layer.name.c_str(), layer.in_c, layer.in_h, layer.in_w, layer.out_c, layer.kernel,
              evaluations);

  dse::DseOptions opts;
  opts.evaluations = evaluations;
  const auto points = flash_acc.explore_layer(layer, opts);
  const auto front = dse::pareto_front(points);

  std::printf("\n%-10s %-14s %-12s %s\n", "power", "error var", "twiddle k", "stage widths");
  for (const auto& p : front) {
    std::printf("%-10.4f %-14.3e %-12d", p.normalized_power, p.error_variance, p.point.twiddle_k);
    for (int w : p.point.stage_widths) std::printf(" %d", w);
    std::printf("\n");
  }

  // Validate the cheapest point against the bit-accurate simulator.
  const encoding::LayerTiling tiling = encoding::plan_layer(layer, params.n);
  dse::DesignSpace space(params.n / 2, dse::SpaceBounds{});
  std::mt19937_64 rng(1);
  const auto& best = front.front();
  const double measured = dse::measured_error_variance(
      params.n, space.to_config(best.point, 8.0), tiling.weight_nnz, 8, 4, rng);
  std::printf("\ncheapest front point: predicted error %.3e, bit-accurate measured %.3e\n",
              best.error_variance, measured);
  std::printf("(the analytical model is used inside the search; the simulator is ground truth)\n");
  return 0;
}
