// The sparse butterfly dataflow, step by step (paper Section IV-B):
// encode a conv layer's weights Cheetah-style, inspect the sparsity pattern,
// plan the skip/merge dataflow, execute it, and verify it against the dense
// FFT while counting the multiplications actually issued.
//
//   $ ./examples/sparse_dataflow
#include <cstdio>
#include <random>

#include "encoding/encoder.hpp"
#include "fft/complex_fft.hpp"
#include "sparsefft/executor.hpp"
#include "tensor/quant.hpp"

int main() {
  using namespace flash;

  // A ResNet-style tile: 8 channels of a 16x16 (power-of-two padded) patch,
  // 3x3 kernel, in a 4096-degree polynomial.
  const std::size_t n = 4096;
  encoding::ConvEncoder enc(n, 8, 16, 16, 3);
  const auto& geo = enc.geometry();
  std::printf("geometry: %zu channels/poly, %zu-degree poly, k=%zu\n", geo.channels_per_poly(), n,
              geo.k);

  const sparsefft::SparsityPattern pattern = enc.weight_pattern();
  std::printf("weight pattern: %zu nonzeros, %.2f%% sparse\n", pattern.weight(),
              100.0 * pattern.sparsity());

  const sparsefft::SparsityPattern br = pattern.bit_reversed();
  const char* shape = "mixed";
  switch (br.classify()) {
    case sparsefft::PatternShape::kContiguous: shape = "contiguous (skipping)"; break;
    case sparsefft::PatternShape::kScattered: shape = "scattered (merging)"; break;
    case sparsefft::PatternShape::kEmpty: shape = "empty"; break;
    case sparsefft::PatternShape::kMixed: shape = "mixed (skip + merge)"; break;
  }
  std::printf("after bit-reverse: %s\n", shape);

  // Fold onto the N/2-point FFT input and plan.
  const std::size_t m = n / 2;
  std::vector<std::size_t> folded;
  for (std::size_t p : pattern.nonzeros()) folded.push_back(p % m);
  const sparsefft::SparsityPattern fold_pattern(m, std::move(folded));
  const sparsefft::SparseFftPlan plan(m, fold_pattern);
  const sparsefft::PlanCost dense = sparsefft::SparseFftPlan::dense_cost(m);

  std::printf("\nper-stage schedule (ops scheduled / dense butterflies per stage = %zu):\n", m / 2);
  for (int s = 0; s < plan.stages(); ++s) {
    std::size_t full = 0, mul = 0, copy = 0;
    for (const auto& op : plan.stage(s)) {
      full += op.kind == sparsefft::OpKind::kFull;
      mul += op.kind == sparsefft::OpKind::kMulOnly;
      copy += op.kind == sparsefft::OpKind::kCopy;
    }
    std::printf("  stage %2d: %5zu full, %5zu mul-only (merge), %5zu copy (skip)\n", s + 1, full,
                mul, copy);
  }

  const auto& cost = plan.cost();
  std::printf("\nmultiplications: %llu scheduled (%llu merged) of %llu dense -> %.1f%% reduction\n",
              static_cast<unsigned long long>(cost.complex_mults),
              static_cast<unsigned long long>(cost.merged_mults),
              static_cast<unsigned long long>(dense.merged_mults),
              100.0 * (1.0 - static_cast<double>(cost.merged_mults) /
                                 static_cast<double>(dense.merged_mults)));

  // Execute the sparse plan on actual weight values and verify vs dense FFT.
  std::mt19937_64 rng(3);
  std::vector<fft::cplx> input(m, {0.0, 0.0});
  for (std::size_t p : fold_pattern.nonzeros()) {
    input[p] = {static_cast<double>(static_cast<int>(rng() % 15) - 7), 0.0};
  }
  const auto sparse_out = sparsefft::execute(plan, input);
  auto dense_out = input;
  fft::FftPlan(m, +1).forward(dense_out);
  double max_diff = 0;
  for (std::size_t i = 0; i < m; ++i) max_diff = std::max(max_diff, std::abs(sparse_out[i] - dense_out[i]));
  std::printf("sparse execution vs dense FFT: max |diff| = %.3e\n", max_diff);
  return max_diff < 1e-9 ? 0 : 1;
}
