// flash_plan: a small CLI around the FlashAccelerator planner.
//
// Plan any convolution layer onto the FLASH accelerator: tiling decision,
// encoded weight sparsity, sparse-dataflow fraction, and latency/energy
// against the CHAM / F1 baselines.
//
//   $ ./examples/flash_plan <in_c> <in_hw> <out_c> <kernel> <stride> [N]
//   $ ./examples/flash_plan resnet50            # plan the whole network
//   $ ./examples/flash_plan resnet18
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/flash_accelerator.hpp"
#include "tensor/resnet.hpp"

namespace {

using namespace flash;

void print_layer(const core::FlashAccelerator& acc, const tensor::LayerConfig& layer) {
  const core::LayerPlan plan = acc.plan_layer(layer);
  std::printf("%-24s in %4zux%3zux%-3zu out %4zu k%zu s%zu | patch %3zux%-3zu cpp %3zu tiles %3zux%-3zu | "
              "nnz %4zu frac %.3f | FLASH %8.2f us  CHAM %8.2f us\n",
              layer.name.c_str(), layer.in_c, layer.in_h, layer.in_w, layer.out_c, layer.kernel,
              layer.stride, plan.tiling.patch_h, plan.tiling.patch_w, plan.tiling.channels_per_poly,
              plan.tiling.channel_tiles, plan.tiling.spatial_tiles, plan.tiling.weight_nnz,
              plan.weight_mult_fraction, plan.flash.seconds * 1e6, plan.cham.seconds * 1e6);
}

void print_network(const core::FlashAccelerator& acc,
                   const std::vector<tensor::LayerConfig>& layers, const char* name) {
  std::printf("=== %s, per-layer plan (N = %zu) ===\n", name, acc.context().params().n);
  for (const auto& layer : layers) print_layer(acc, layer);
  const core::NetworkEstimate est = acc.estimate_network(layers);
  std::printf("\nnetwork totals: %llu weight / %llu ct / %llu inverse transforms\n",
              static_cast<unsigned long long>(est.workload.weight_transforms),
              static_cast<unsigned long long>(est.workload.cipher_transforms),
              static_cast<unsigned long long>(est.workload.inverse_transforms));
  std::printf("FLASH transform latency %.3f ms (all arrays %.3f ms) | CHAM %.2f ms -> %.1fx | "
              "energy vs F1: -%.1f%%\n",
              est.flash_transform_seconds() * 1e3, est.flash.seconds * 1e3, est.cham.seconds * 1e3,
              est.speedup_vs_cham(), 100.0 * est.energy_reduction_vs_f1());
}

}  // namespace

int main(int argc, char** argv) {
  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  core::FlashAccelerator acc(params);

  if (argc >= 2 && std::strcmp(argv[1], "resnet50") == 0) {
    print_network(acc, tensor::resnet50_conv_layers(), "ResNet-50");
    return 0;
  }
  if (argc >= 2 && std::strcmp(argv[1], "resnet18") == 0) {
    print_network(acc, tensor::resnet18_conv_layers(), "ResNet-18");
    return 0;
  }
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: %s <in_c> <in_hw> <out_c> <kernel> <stride>\n"
                 "       %s resnet50 | resnet18\n",
                 argv[0], argv[0]);
    return 2;
  }
  tensor::LayerConfig layer;
  layer.name = "custom";
  layer.in_c = std::strtoul(argv[1], nullptr, 10);
  layer.in_h = layer.in_w = std::strtoul(argv[2], nullptr, 10);
  layer.out_c = std::strtoul(argv[3], nullptr, 10);
  layer.kernel = std::strtoul(argv[4], nullptr, 10);
  layer.stride = std::strtoul(argv[5], nullptr, 10);
  layer.pad = layer.kernel / 2;
  print_layer(acc, layer);
  return 0;
}
