// Full private inference over a small quantized CNN: every convolution runs
// through the hybrid HE/2PC protocol on the FLASH datapath; ReLU,
// requantization and the classifier head run in the (simulated) 2PC layer.
// The private predictions must match the cleartext network exactly.
//
//   $ ./examples/private_inference_demo [samples]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "core/flash_accelerator.hpp"
#include "tensor/network.hpp"
#include "tensor/quant.hpp"

int main(int argc, char** argv) {
  using namespace flash;
  const int samples = argc > 1 ? std::atoi(argv[1]) : 5;

  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  core::FlashOptions options;
  options.backend = bfv::PolyMulBackend::kApproxFft;
  options.approx_config = core::high_accuracy_approx_config(params.n, params.t);
  core::FlashAccelerator acc(params, options);

  // A 3-block quantized CNN: 3 -> 8 channels at 8x8, W4A4.
  std::mt19937_64 rng(2025);
  const tensor::SmallQuantNet net = tensor::SmallQuantNet::random(3, 8, 3, 10, 8, 4, 4, rng);
  const tensor::ConvFn reference = tensor::reference_conv();
  tensor::ConvFn private_conv = acc.hconv_executor();

  std::printf("private CNN inference: stem + %zu residual blocks, %d convolutions per sample\n",
              net.blocks.size(), 1 + 2 * static_cast<int>(net.blocks.size()));

  int agreements = 0;
  double total_s = 0.0;
  for (int s = 0; s < samples; ++s) {
    const tensor::Tensor3 x = tensor::random_activations(3, 8, 8, 4, rng);
    const std::size_t expected = net.predict(x, reference);
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t got = net.predict(x, private_conv);
    const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    total_s += secs;
    agreements += got == expected;
    std::printf("  sample %d: cleartext class %zu, private class %zu (%.2f s) %s\n", s, expected,
                got, secs, got == expected ? "" : "  <-- MISMATCH");
  }
  std::printf("\n%d/%d private predictions match cleartext inference (avg %.2f s/sample on CPU;\n",
              agreements, samples, total_s / samples);
  std::printf("the FLASH accelerator model puts the same workload at microseconds).\n");
  return agreements == samples ? 0 : 1;
}
