// Rotation-based (GAZELLE) vs coefficient-encoded (Cheetah/FLASH) private
// matrix-vector products, end to end. This is the Table I positioning of the
// paper made concrete: the coefficient encoding removes every homomorphic
// rotation, which is what makes HConv NTT/FFT-bound (and FLASH relevant).
//
//   $ ./examples/gazelle_vs_cheetah
#include <chrono>
#include <cstdio>
#include <random>

#include "protocol/gazelle_matvec.hpp"
#include "protocol/hconv_protocol.hpp"
#include "tensor/conv.hpp"

int main() {
  using namespace flash;

  // Batching-capable parameters (prime t) serve both protocols.
  const bfv::BfvParams params = bfv::BfvParams::create_batching(1024, 14, 60);
  bfv::BfvContext ctx(params);

  const std::size_t in_f = 64, out_f = 32;
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<hemath::i64> wdist(-7, 7), xdist(0, 15);
  std::vector<hemath::i64> w(in_f * out_f), x(in_f);
  for (auto& v : w) v = wdist(rng);
  for (auto& v : x) v = xdist(rng);
  const auto expect = tensor::linear(x, w, out_f);

  // --- GAZELLE: SIMD batching + diagonal rotations.
  auto t0 = std::chrono::steady_clock::now();
  protocol::GazelleMatVec gazelle(ctx, in_f, out_f, 11);
  const double setup_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  t0 = std::chrono::steady_clock::now();
  const auto gz = gazelle.run(x, w);
  const double gz_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // --- Cheetah: coefficient encoding, zero rotations.
  protocol::HConvProtocol cheetah(ctx, bfv::PolyMulBackend::kNtt, std::nullopt, 12);
  t0 = std::chrono::steady_clock::now();
  const auto ch = cheetah.run_matvec(x, w, out_f);
  const double ch_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const auto ch_y = ch.reconstruct(params.t);

  std::printf("private matvec %zux%zu (N=%zu, prime t=%llu)\n\n", out_f, in_f, params.n,
              static_cast<unsigned long long>(params.t));
  std::printf("%-24s %12s %12s %12s %10s\n", "protocol", "rotations", "galois keys", "CPU ms",
              "correct");
  std::printf("%-24s %12zu %12zu %12.2f %10s\n", "GAZELLE (diagonals)", gz.rotations, in_f - 1,
              gz_s * 1e3, gz.y == expect ? "yes" : "NO");
  std::printf("%-24s %12d %12d %12.2f %10s\n", "Cheetah (coefficient)", 0, 0, ch_s * 1e3,
              ch_y == expect ? "yes" : "NO");
  std::printf("\nGAZELLE setup (Galois keygen): %.1f ms — also absent from the Cheetah path.\n",
              setup_s * 1e3);
  std::printf("Each rotation is a key switch (~%d NTT-sized products); the coefficient\n", 8);
  std::printf("encoding spends that budget on plain weight transforms instead — the\n");
  std::printf("workload FLASH then makes 60-90x cheaper with approximate sparse FFTs.\n");
  return (gz.y == expect && ch_y == expect) ? 0 : 1;
}
